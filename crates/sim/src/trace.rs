//! Trace rendering: regenerating Figure 1 of the paper.
//!
//! Figure 1 shows the mergesort execution tree for `n = 16`, `p = 4` with a
//! number by each node (the time step at which the call was granted to the
//! scheduler) and a colour per node at a snapshot time `t`: black for calls
//! actively holding a processor, gray for calls that have been pal-requested
//! but are not running, and white for calls that have not been pal-requested
//! yet.  [`render_figure1_snapshot`] produces the ASCII equivalent, and
//! [`render_activation_tree`] prints the per-level activation times so the
//! `1 / 2 2 / 3 3 3 3 / 4 7 … / 5 6 8 9 …` pattern of the figure can be
//! checked at a glance.

use crate::schedule::SimResult;
use crate::tree::TaskTree;

/// Classification of a node at a snapshot time, matching the colours of
/// Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeSnapshotState {
    /// The call has not been pal-requested yet (white in the figure).
    NotRequested,
    /// The call has been pal-requested but is not occupying a processor at
    /// the snapshot time: it is pending or waiting for its children (gray).
    RequestedInactive,
    /// The call is actively occupying a processor (black).
    Active,
    /// The call has completed.
    Done,
}

/// Classify node `id` at time `t` from the simulation records.
pub fn node_state_at(tree: &TaskTree, result: &SimResult, id: usize, t: u64) -> NodeSnapshotState {
    let rec = &result.records[id];
    if rec.requested_at > t {
        return NodeSnapshotState::NotRequested;
    }
    if rec.completed_at <= t {
        return NodeSnapshotState::Done;
    }
    let node = tree.node(id);
    // Active while running its divide phase …
    let divide_active = rec.activated_at <= t && t < rec.activated_at + node.divide_cost.max(1);
    // … or while running its merge phase (leaves have no separate merge).
    let merge_active =
        !node.is_leaf() && rec.merge_started_at <= t && t < rec.merge_started_at + node.merge_cost;
    if (divide_active || merge_active) && rec.activated_at <= t {
        NodeSnapshotState::Active
    } else {
        NodeSnapshotState::RequestedInactive
    }
}

fn state_symbol(state: NodeSnapshotState) -> char {
    match state {
        NodeSnapshotState::NotRequested => '·',
        NodeSnapshotState::RequestedInactive => 'o',
        NodeSnapshotState::Active => '#',
        NodeSnapshotState::Done => '+',
    }
}

/// Render the per-level activation times of the execution tree (the numbers
/// printed next to each node in Figure 1).
pub fn render_activation_tree(tree: &TaskTree, result: &SimResult) -> String {
    let mut out = String::new();
    for (depth, level) in tree.levels().iter().enumerate() {
        let times: Vec<String> = level
            .iter()
            .map(|&id| result.records[id].activated_at.to_string())
            .collect();
        out.push_str(&format!("level {depth}: {}\n", times.join(" ")));
    }
    out
}

/// Render the Figure 1 snapshot at time `t`: one line per level, each node
/// shown as `time/state` where the state symbol is `#` (active), `o`
/// (requested but not running), `·` (not requested) or `+` (done).
pub fn render_figure1_snapshot(tree: &TaskTree, result: &SimResult, t: u64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Execution tree snapshot at t = {t} (p = {}, n = {}):\n",
        result.processors,
        tree.node(tree.root()).size
    ));
    for (depth, level) in tree.levels().iter().enumerate() {
        let cells: Vec<String> = level
            .iter()
            .map(|&id| {
                let state = node_state_at(tree, result, id, t);
                format!("{}{}", result.records[id].activated_at, state_symbol(state))
            })
            .collect();
        out.push_str(&format!("level {depth}: {}\n", cells.join(" ")));
    }
    out.push_str("legend: # active   o requested/waiting   · not requested   + done\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::TreeSimulator;
    use crate::tree::TaskTree;

    fn figure1() -> (TaskTree, SimResult) {
        let tree = TaskTree::mergesort_figure1(16);
        let result = TreeSimulator::new(&tree).run(4);
        (tree, result)
    }

    #[test]
    fn activation_tree_matches_figure1_numbers() {
        let (tree, result) = figure1();
        let rendered = render_activation_tree(&tree, &result);
        assert!(rendered.contains("level 0: 1"));
        assert!(rendered.contains("level 1: 2 2"));
        assert!(rendered.contains("level 2: 3 3 3 3"));
        assert!(rendered.contains("level 3: 4 7 4 7 4 7 4 7"));
        assert!(rendered.contains("level 4: 5 6 8 9 5 6 8 9 5 6 8 9 5 6 8 9"));
    }

    #[test]
    fn snapshot_at_t6_has_active_second_leaves() {
        let (tree, result) = figure1();
        // At t = 6 the second leaf of each active subtree (activation time 6)
        // must be the one holding a processor.
        let levels = tree.levels();
        let mut active = 0;
        for &id in &levels[4] {
            let state = node_state_at(&tree, &result, id, 6);
            if result.records[id].activated_at == 6 {
                assert_eq!(state, NodeSnapshotState::Active);
                active += 1;
            }
        }
        assert_eq!(active, 4, "one active leaf per processor at t = 6");
    }

    #[test]
    fn snapshot_at_t6_has_unrequested_right_subtrees() {
        let (tree, result) = figure1();
        let levels = tree.levels();
        // The second child of each size-4 node is requested at 4 but its own
        // children (activation times 8 and 9) are still unrequested at t = 6.
        let unrequested = levels[4]
            .iter()
            .filter(|&&id| node_state_at(&tree, &result, id, 6) == NodeSnapshotState::NotRequested)
            .count();
        assert_eq!(unrequested, 8);
    }

    #[test]
    fn snapshot_before_start_is_all_unrequested_except_root() {
        let (tree, result) = figure1();
        let root_state = node_state_at(&tree, &result, tree.root(), 1);
        assert_eq!(root_state, NodeSnapshotState::Active);
        let later = node_state_at(&tree, &result, tree.levels()[2][0], 1);
        assert_eq!(later, NodeSnapshotState::NotRequested);
    }

    #[test]
    fn snapshot_after_completion_is_all_done() {
        let (tree, result) = figure1();
        let t = result.makespan + 1;
        for id in 0..tree.len() {
            assert_eq!(
                node_state_at(&tree, &result, id, t),
                NodeSnapshotState::Done
            );
        }
    }

    #[test]
    fn rendering_contains_legend_and_levels() {
        let (tree, result) = figure1();
        let s = render_figure1_snapshot(&tree, &result, 6);
        assert!(s.contains("legend"));
        assert!(s.contains("level 4:"));
        assert!(s.contains("t = 6"));
    }
}
