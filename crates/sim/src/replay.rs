//! Deterministic replay of captured [`DagTrace`]s.
//!
//! `lopram-core`'s tracer (see `lopram_core::runtime::trace`) records the
//! *structure* of a real pal-thread execution — every fork/spawn call site
//! with its recursion depth, plus one `Pass` event per blocked data-parallel
//! pass with the element count it covered.  That structure is
//! schedule-independent: which call sites execute is a property of the
//! program and its input, not of how the OS interleaved the workers.  This
//! module closes the loop between the real pool and the simulator by
//! replaying such a capture under an **arbitrary** configuration
//! `(p, α, grain)`:
//!
//! * **fork counts** are recounted *exactly*: non-pass creation points are
//!   invariant, and each recorded pass contributes `chunks(len, p′, grain′)
//!   − 1` forks under the new configuration, using the same
//!   [`grain_size`] policy the pool itself uses;
//! * the **elided/scheduled split** is recomputed from the recorded call-site
//!   depths against the new cutoff
//!   [`cutoff_levels(α′, p′)`](lopram_core::policy::cutoff_levels);
//! * **steal counts** and **makespan/speedup** come from materialising the
//!   capture as [`TaskTree`]s (one per barrier-separated phase, elided
//!   subtrees collapsed into their parent's sequential cost) and running the
//!   step-accurate §3.1 scheduler of [`schedule`](crate::schedule); the
//!   simulator's [`migrations`](crate::schedule::SimResult::migrations)
//!   counter is the deterministic analogue of the pool's racy steal counter.
//!
//! At the *capture* configuration the trace itself is the schedule, so
//! [`TraceReplay::predict`] returns the recorded steal total — the best
//! predictor of an observation is the observation — and the recounted fork
//! total collapses to the recorded one.  At `p′ = 1` the cutoff is 0, every
//! creation point is elided, and the prediction is structurally steal-free.

use std::collections::BTreeMap;

use lopram_core::policy::{cutoff_levels, grain_size, DEFAULT_GRAIN, DEFAULT_STEAL_GRAIN};
use lopram_core::runtime::trace::ROOT_NODE;
use lopram_core::{DagTrace, TraceEvent, TraceSummary};

use crate::schedule::TreeSimulator;
use crate::tree::{TaskTree, TreeNode};

/// Grain policy to replay under — mirrors the two configurations a
/// [`PalPoolBuilder`](lopram_core::PalPoolBuilder) can be in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayGrain {
    /// The pool's default adaptive policy:
    /// `grain_size(len, p, DEFAULT_GRAIN, DEFAULT_STEAL_GRAIN)`.
    Adaptive,
    /// The `PalPoolBuilder::grain(min)` policy: at least `min` elements per
    /// block, steal-informed oversubscription disabled —
    /// `grain_size(len, p, min, 0)`.
    Fixed(usize),
}

impl ReplayGrain {
    /// Number of blocks a blocked pass over `len` elements is split into on
    /// `p` processors under this policy — the replayer's copy of the pool's
    /// `chunk_count`.
    pub fn chunks(self, len: usize, p: usize) -> usize {
        if len == 0 {
            return 1;
        }
        match self {
            ReplayGrain::Adaptive => grain_size(len, p, DEFAULT_GRAIN, DEFAULT_STEAL_GRAIN),
            ReplayGrain::Fixed(min) => grain_size(len, p, min.max(1), 0),
        }
    }
}

/// What [`TraceReplay::predict`] says a capture would do under a
/// configuration `(p, α, grain)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayPrediction {
    /// Processor count the prediction is for.
    pub processors: usize,
    /// Elision cutoff `⌈α·log₂ p⌉` at this configuration.
    pub cutoff: usize,
    /// Exact fork count: recorded non-pass creation points plus the
    /// recounted per-pass `chunks − 1`.
    pub forks: u64,
    /// Creation points the throttle would elide (recorded call-site depth
    /// `≥ cutoff`).  The grain-induced fork delta is attributed to the
    /// scheduled side when the cutoff is positive (pass call sites sit
    /// above the cutoff in every capture the pool produces) and to the
    /// elided side at `cutoff = 0`.
    pub elided: u64,
    /// Creation points that would reach the scheduler (`forks − elided`).
    pub scheduled: u64,
    /// Predicted steal count.  At the capture configuration this is the
    /// *recorded* steal total (the trace is the schedule); at any other
    /// configuration it is the step-accurate simulator's deterministic
    /// [`migrations`](crate::schedule::SimResult::migrations) count.
    /// Structurally 0 at `p = 1` either way.
    pub steals: u64,
    /// Simulated wall-clock steps across all phases (unit-cost model,
    /// elided subtrees collapsed into sequential cost).
    pub makespan: u64,
    /// Total unit-cost work across all phases (`T₁` of the model).
    pub total_work: u64,
    /// `true` when `(p, cutoff, grain)` is indistinguishable from the
    /// capture configuration: same `p`, same cutoff, and the grain policy
    /// reproduces every recorded pass's chunk count.
    pub at_capture_config: bool,
}

impl ReplayPrediction {
    /// Model speedup `T₁ / T_p` (1.0 for an empty capture).
    pub fn speedup(&self) -> f64 {
        if self.makespan == 0 {
            1.0
        } else {
            self.total_work as f64 / self.makespan as f64
        }
    }
}

/// One creation edge recovered from the event stream.
#[derive(Debug, Clone, Copy)]
struct Creation {
    depth: u32,
}

/// A replayable view over a captured [`DagTrace`].
///
/// ```
/// use lopram_core::{PalPool, TraceConfig};
/// use lopram_sim::replay::{ReplayGrain, TraceReplay};
///
/// let pool = PalPool::builder()
///     .processors(2)
///     .trace(TraceConfig::default())
///     .build()
///     .unwrap();
/// pool.join(|| (), || ());
/// let trace = pool.take_trace().unwrap();
///
/// let replay = TraceReplay::from_trace(trace);
/// assert_eq!(replay.recorded().forks, 1);
/// let p1 = replay.predict(1, 2.0, ReplayGrain::Adaptive);
/// assert_eq!(p1.steals, 0, "one processor cannot steal");
/// ```
#[derive(Debug, Clone)]
pub struct TraceReplay {
    trace: DagTrace,
    summary: TraceSummary,
}

impl TraceReplay {
    /// Wrap a captured trace for replay.  The trace should be *complete*
    /// ([`DagTrace::is_complete`]); on a lossy capture every prediction is
    /// still well defined but undercounts, exactly as
    /// [`DagTrace::summary`] does.
    pub fn from_trace(trace: DagTrace) -> Self {
        let summary = trace.summary();
        TraceReplay { trace, summary }
    }

    /// The underlying capture.
    pub fn trace(&self) -> &DagTrace {
        &self.trace
    }

    /// The capture's own accounting ([`DagTrace::summary`]): on a complete
    /// trace of a quiesced pool this equals the pool's `RunMetrics` deltas
    /// for the capture window.
    pub fn recorded(&self) -> TraceSummary {
        self.summary
    }

    /// Predict what this capture would do on `p` processors with throttle
    /// parameter `alpha` and the given grain policy.  See the module docs
    /// for which quantities are exact and which are modelled.
    ///
    /// # Panics
    ///
    /// Panics when `p == 0`.
    pub fn predict(&self, p: usize, alpha: f64, grain: ReplayGrain) -> ReplayPrediction {
        assert!(p >= 1, "at least one processor is required");
        let cutoff = cutoff_levels(alpha, p);
        let s = &self.summary;

        // Exact fork recount: only the blocked-pass share varies with
        // (p, grain); everything else is schedule- and config-independent.
        let mut new_pass_forks = 0u64;
        let mut pass_chunks_match = true;
        for ev in &self.trace.events {
            if let TraceEvent::Pass { len, chunks, .. } = *ev {
                let c = grain.chunks(len as usize, p) as u64;
                new_pass_forks += c - 1;
                if c != chunks as u64 {
                    pass_chunks_match = false;
                }
            }
        }
        // On a real capture `forks ≥ pass_forks` (every pass fork is also a
        // recorded creation event); saturate so hand-built traces that only
        // carry `Pass` markers stay well defined.
        let forks = s.forks.saturating_sub(s.pass_forks) + new_pass_forks;

        // Elided/scheduled split from recorded call-site depths.
        let (elided, scheduled) = if cutoff == 0 {
            (forks, 0)
        } else {
            let recorded_elided = self
                .trace
                .events
                .iter()
                .filter(|ev| match **ev {
                    TraceEvent::Fork { depth, .. } | TraceEvent::Spawn { depth, .. } => {
                        depth as usize >= cutoff
                    }
                    _ => false,
                })
                .count() as u64;
            // A pathological capture (passes issued below the cutoff) can
            // recount `forks` below the recorded elided total; keep the
            // identity `forks = elided + scheduled` by saturating.
            let scheduled = forks.saturating_sub(recorded_elided);
            (forks - scheduled, scheduled)
        };

        let (makespan, total_work, migrations) = self.simulate(p, cutoff);

        let at_capture_config =
            p == self.trace.processors && self.trace.cutoff == Some(cutoff) && pass_chunks_match;
        let steals = if p == 1 {
            0
        } else if at_capture_config {
            s.steals
        } else {
            migrations
        };

        ReplayPrediction {
            processors: p,
            cutoff,
            forks,
            elided,
            scheduled,
            steals,
            makespan,
            total_work,
            at_capture_config,
        }
    }

    /// Materialise the capture as unit-cost [`TaskTree`] phases and run the
    /// §3.1 scheduler on each; phases execute back to back (every blocked
    /// pass and every top-level `join` is a barrier in the real pool), so
    /// makespans, work and migrations add up.
    fn simulate(&self, p: usize, cutoff: usize) -> (u64, u64, u64) {
        // Child lists per recorded node, in timestamp order (events are
        // sorted by ts), plus each child's creating-event depth.
        let mut children: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        let mut created: BTreeMap<u32, Creation> = BTreeMap::new();
        // Top-level phases: a root-level Fork is its own barrier phase; a
        // run of root-level Spawns uninterrupted by a Fork or a Pass is one
        // concurrent phase (one scope / one blocked pass).
        let mut phases: Vec<Vec<u32>> = Vec::new();
        let mut spawn_group: Vec<u32> = Vec::new();
        for ev in &self.trace.events {
            match *ev {
                TraceEvent::Fork {
                    parent,
                    left,
                    right,
                    depth,
                    ..
                } => {
                    created.insert(left, Creation { depth });
                    created.insert(right, Creation { depth });
                    if parent == ROOT_NODE {
                        if !spawn_group.is_empty() {
                            phases.push(std::mem::take(&mut spawn_group));
                        }
                        phases.push(vec![left, right]);
                    } else {
                        let kids = children.entry(parent).or_default();
                        kids.push(left);
                        kids.push(right);
                    }
                }
                TraceEvent::Spawn {
                    parent,
                    child,
                    depth,
                    ..
                } => {
                    created.insert(child, Creation { depth });
                    if parent == ROOT_NODE {
                        spawn_group.push(child);
                    } else {
                        children.entry(parent).or_default().push(child);
                    }
                }
                TraceEvent::Pass { .. } => {
                    if !spawn_group.is_empty() {
                        phases.push(std::mem::take(&mut spawn_group));
                    }
                }
                TraceEvent::Enter { .. } | TraceEvent::Exit { .. } => {}
            }
        }
        if !spawn_group.is_empty() {
            phases.push(spawn_group);
        }

        let mut makespan = 0u64;
        let mut total_work = 0u64;
        let mut migrations = 0u64;
        for phase in &phases {
            let tree = build_phase_tree(phase, &children, &created, cutoff);
            let result = TreeSimulator::new(&tree).run(p);
            makespan += result.makespan;
            total_work += result.total_work;
            migrations += result.migrations;
        }
        (makespan, total_work, migrations)
    }
}

/// Total creation count of a recorded subtree (the node itself plus every
/// descendant) — the sequential cost an elided subtree collapses into.
fn subtree_work(node: u32, children: &BTreeMap<u32, Vec<u32>>) -> u64 {
    let mut work = 1u64;
    if let Some(kids) = children.get(&node) {
        for &c in kids {
            work += subtree_work(c, children);
        }
    }
    work
}

/// Materialise one phase as a unit-cost [`TaskTree`]: a synthetic root
/// (the issuing thread) over the phase's top-level pal-threads, recursing
/// into children whose creating call site sits above the cutoff and
/// collapsing deeper (elided) subtrees into their parent's divide cost.
fn build_phase_tree(
    top: &[u32],
    children: &BTreeMap<u32, Vec<u32>>,
    created: &BTreeMap<u32, Creation>,
    cutoff: usize,
) -> TaskTree {
    let mut nodes: Vec<TreeNode> = vec![TreeNode {
        size: 0,
        divide_cost: 1,
        merge_cost: 0,
        children: Vec::new(),
        parent: None,
        depth: 0,
    }];
    for &t in top {
        materialize(&mut nodes, 0, t, children, created, cutoff);
    }
    if !nodes[0].children.is_empty() {
        nodes[0].merge_cost = 1;
    }
    TaskTree::from_nodes(nodes, 0)
}

/// Add recorded node `node` under tree index `parent_idx`, or collapse it
/// into the parent's divide cost when its creating call site is at or below
/// the cutoff.
fn materialize(
    nodes: &mut Vec<TreeNode>,
    parent_idx: usize,
    node: u32,
    children: &BTreeMap<u32, Vec<u32>>,
    created: &BTreeMap<u32, Creation>,
    cutoff: usize,
) {
    let depth = created.get(&node).map_or(0, |c| c.depth);
    if depth as usize >= cutoff {
        nodes[parent_idx].divide_cost += subtree_work(node, children);
        return;
    }
    let idx = nodes.len();
    let tree_depth = nodes[parent_idx].depth + 1;
    nodes.push(TreeNode {
        size: 0,
        divide_cost: 1,
        merge_cost: 0,
        children: Vec::new(),
        parent: Some(parent_idx),
        depth: tree_depth,
    });
    nodes[parent_idx].children.push(idx);
    if let Some(kids) = children.get(&node) {
        for &c in kids {
            materialize(nodes, idx, c, children, created, cutoff);
        }
    }
    if !nodes[idx].children.is_empty() {
        nodes[idx].merge_cost = 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lopram_core::runtime::trace::{EXTERNAL_WORKER, TRACE_FORMAT_VERSION};

    /// A hand-written capture: one top-level fork (depth 0, scheduled) whose
    /// right child was stolen, with one elided fork (depth 2) under the left
    /// child, captured at p = 2 (cutoff 2).
    fn sample_trace() -> DagTrace {
        DagTrace {
            version: TRACE_FORMAT_VERSION,
            processors: 2,
            cutoff: Some(2),
            capacity_per_worker: 1 << 16,
            events: vec![
                TraceEvent::Fork {
                    ts: 1,
                    worker: EXTERNAL_WORKER,
                    parent: ROOT_NODE,
                    left: 1,
                    right: 2,
                    depth: 0,
                    elided: false,
                },
                TraceEvent::Enter {
                    ts: 2,
                    worker: 0,
                    node: 1,
                },
                TraceEvent::Enter {
                    ts: 2,
                    worker: 1,
                    node: 2,
                },
                TraceEvent::Fork {
                    ts: 3,
                    worker: 0,
                    parent: 1,
                    left: 3,
                    right: 4,
                    depth: 2,
                    elided: true,
                },
                TraceEvent::Exit {
                    ts: 4,
                    worker: 0,
                    node: 1,
                },
                TraceEvent::Exit {
                    ts: 4,
                    worker: 1,
                    node: 2,
                },
            ],
            dropped: 0,
        }
    }

    #[test]
    fn recorded_matches_summary() {
        let replay = TraceReplay::from_trace(sample_trace());
        let s = replay.recorded();
        assert_eq!(s.forks, 2);
        assert_eq!(s.elided, 1);
        assert_eq!(s.steals, 1);
    }

    #[test]
    fn predict_at_capture_config_reproduces_recorded_totals() {
        let replay = TraceReplay::from_trace(sample_trace());
        let p = replay.predict(2, 2.0, ReplayGrain::Adaptive);
        assert!(p.at_capture_config);
        assert_eq!(p.cutoff, 2);
        assert_eq!(p.forks, replay.recorded().forks);
        assert_eq!(p.elided, replay.recorded().elided);
        assert_eq!(p.scheduled, replay.recorded().scheduled);
        assert_eq!(p.steals, replay.recorded().steals);
    }

    #[test]
    fn predict_single_processor_is_steal_free_and_fully_elided() {
        let replay = TraceReplay::from_trace(sample_trace());
        let p = replay.predict(1, 2.0, ReplayGrain::Adaptive);
        assert_eq!(p.cutoff, 0);
        assert_eq!(p.steals, 0);
        assert_eq!(p.elided, p.forks);
        assert_eq!(p.scheduled, 0);
        assert_eq!(p.forks, replay.recorded().forks, "no passes to recount");
        assert!(!p.at_capture_config);
        assert!((p.speedup() - 1.0).abs() < 1e-12, "p = 1 runs sequentially");
    }

    #[test]
    fn pass_forks_are_recounted_under_a_new_grain() {
        let trace = DagTrace {
            version: TRACE_FORMAT_VERSION,
            processors: 2,
            cutoff: Some(2),
            capacity_per_worker: 1 << 16,
            events: vec![TraceEvent::Pass {
                ts: 1,
                worker: EXTERNAL_WORKER,
                len: 4096,
                chunks: ReplayGrain::Adaptive.chunks(4096, 2) as u32,
            }],
            dropped: 0,
        };
        let replay = TraceReplay::from_trace(trace);
        let rec = replay.recorded();
        assert_eq!(rec.passes, 1);
        let same = replay.predict(2, 2.0, ReplayGrain::Adaptive);
        assert!(same.at_capture_config);
        assert_eq!(same.forks, rec.pass_forks);
        let coarse = replay.predict(2, 2.0, ReplayGrain::Fixed(4096));
        assert_eq!(coarse.forks, 0, "one 4096-element block forks nothing");
        assert!(!coarse.at_capture_config);
        let four = replay.predict(4, 2.0, ReplayGrain::Fixed(1));
        assert_eq!(four.forks, ReplayGrain::Fixed(1).chunks(4096, 4) as u64 - 1);
    }

    #[test]
    fn simulated_makespan_improves_with_processors() {
        // A deep top-level fork tree: replaying at higher p must not be
        // slower, and the model speedup stays within [1, p].
        let mut events = Vec::new();
        let mut next = 1u32;
        let mut frontier = vec![(ROOT_NODE, 0u32)];
        let mut ts = 0u64;
        for _ in 0..5 {
            let mut new_frontier = Vec::new();
            for (node, depth) in frontier {
                ts += 1;
                let (l, r) = (next, next + 1);
                next += 2;
                events.push(TraceEvent::Fork {
                    ts,
                    worker: 0,
                    parent: node,
                    left: l,
                    right: r,
                    depth,
                    elided: false,
                });
                new_frontier.push((l, depth + 1));
                new_frontier.push((r, depth + 1));
            }
            frontier = new_frontier;
        }
        let trace = DagTrace {
            version: TRACE_FORMAT_VERSION,
            processors: 4,
            cutoff: None,
            capacity_per_worker: 1 << 16,
            events,
            dropped: 0,
        };
        let replay = TraceReplay::from_trace(trace);
        let p1 = replay.predict(1, 2.0, ReplayGrain::Adaptive);
        let p4 = replay.predict(4, 2.0, ReplayGrain::Adaptive);
        assert!(p4.makespan <= p1.makespan);
        assert!(p4.speedup() >= 1.0);
        assert!(p4.speedup() <= 4.0 + 1e-12);
        assert_eq!(p1.steals, 0);
        assert!(p4.steals > 0, "a wide tree at p = 4 must migrate work");
    }
}
