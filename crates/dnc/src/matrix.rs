//! Dense square matrices used by the Strassen experiments.
//!
//! A deliberately small, self-contained matrix type: row-major `f64`
//! storage, naive `Θ(n³)` multiplication as the oracle, and the
//! quadrant-view helpers the divide-and-conquer multipliers need.

use std::ops::{Add, Sub};

/// A dense square matrix in row-major order.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    n: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of side `n`.
    pub fn zeros(n: usize) -> Self {
        Matrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Identity matrix of side `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build a matrix from a row-major vector; panics when the length is not `n²`.
    pub fn from_vec(n: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n * n, "expected {} elements", n * n);
        Matrix { n, data }
    }

    /// Build a matrix by evaluating `f(row, col)`.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(n * n);
        for i in 0..n {
            for j in 0..n {
                data.push(f(i, j));
            }
        }
        Matrix { n, data }
    }

    /// Side length.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Raw row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Naive `Θ(n³)` multiplication (the correctness oracle).
    pub fn naive_mul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.n, other.n, "matrix sizes must match");
        let n = self.n;
        let mut out = Matrix::zeros(n);
        for i in 0..n {
            for k in 0..n {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..n {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Extract the quadrant (`qi`, `qj`) of a matrix whose side is even.
    pub fn quadrant(&self, qi: usize, qj: usize) -> Matrix {
        assert!(self.n.is_multiple_of(2), "quadrants require an even side");
        assert!(qi < 2 && qj < 2, "quadrant index out of range");
        let h = self.n / 2;
        Matrix::from_fn(h, |i, j| self[(qi * h + i, qj * h + j)])
    }

    /// Assemble a matrix from four quadrants of equal side.
    pub fn from_quadrants(c11: &Matrix, c12: &Matrix, c21: &Matrix, c22: &Matrix) -> Matrix {
        let h = c11.n;
        assert!(
            c12.n == h && c21.n == h && c22.n == h,
            "quadrants must have equal size"
        );
        Matrix::from_fn(2 * h, |i, j| match (i < h, j < h) {
            (true, true) => c11[(i, j)],
            (true, false) => c12[(i, j - h)],
            (false, true) => c21[(i - h, j)],
            (false, false) => c22[(i - h, j - h)],
        })
    }

    /// Pad the matrix with zeros up to side `m ≥ n`.
    pub fn padded(&self, m: usize) -> Matrix {
        assert!(m >= self.n);
        Matrix::from_fn(m, |i, j| {
            if i < self.n && j < self.n {
                self[(i, j)]
            } else {
                0.0
            }
        })
    }

    /// Take the top-left `m × m` corner.
    pub fn truncated(&self, m: usize) -> Matrix {
        assert!(m <= self.n);
        Matrix::from_fn(m, |i, j| self[(i, j)])
    }

    /// Maximum absolute entry-wise difference to another matrix.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.n, other.n);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.n + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.n + j]
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, other: &Matrix) -> Matrix {
        assert_eq!(self.n, other.n);
        Matrix {
            n: self.n,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, other: &Matrix) -> Matrix {
        assert_eq!(self.n, other.n);
        Matrix {
            n: self.n,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    pub(crate) fn random_matrix(n: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_fn(n, |_, _| rng.gen_range(-10.0..10.0))
    }

    #[test]
    fn identity_is_multiplicative_identity() {
        let a = random_matrix(8, 1);
        let id = Matrix::identity(8);
        assert!(a.naive_mul(&id).max_abs_diff(&a) < 1e-12);
        assert!(id.naive_mul(&a).max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn known_2x2_product() {
        let a = Matrix::from_vec(2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.naive_mul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn quadrant_roundtrip() {
        let a = random_matrix(16, 3);
        let rebuilt = Matrix::from_quadrants(
            &a.quadrant(0, 0),
            &a.quadrant(0, 1),
            &a.quadrant(1, 0),
            &a.quadrant(1, 1),
        );
        assert_eq!(a, rebuilt);
    }

    #[test]
    fn pad_and_truncate_roundtrip() {
        let a = random_matrix(10, 4);
        let padded = a.padded(16);
        assert_eq!(padded.size(), 16);
        assert_eq!(padded.truncated(10), a);
        assert_eq!(padded[(15, 15)], 0.0);
    }

    #[test]
    fn add_sub_are_elementwise() {
        let a = random_matrix(6, 5);
        let b = random_matrix(6, 6);
        let sum = &a + &b;
        let diff = &sum - &b;
        assert!(diff.max_abs_diff(&a) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "expected 4 elements")]
    fn from_vec_checks_length() {
        let _ = Matrix::from_vec(2, vec![1.0, 2.0, 3.0]);
    }
}
