//! The generic divide-and-conquer framework.
//!
//! [`DncProblem`] captures the shape the paper analyses: a problem is either
//! a base case solved directly, or it is divided into `a` subproblems whose
//! solutions are merged.  [`solve`] runs the straightforward pal-thread
//! parallelization — each recursive call becomes a pal-thread, exactly the
//! `palthreads { … }` transformation of the mergesort example in §3.1 — on
//! any [`Executor`], and [`DncRun`] reports what the run did (nodes, depth of
//! the parallel frontier) so experiments can relate it to Figure 2.

use std::sync::atomic::{AtomicU64, Ordering};

use lopram_analysis::Recurrence;
use lopram_core::Executor;
use parking_lot::Mutex;

/// A divide-and-conquer problem in the sense of §4.1.
pub trait DncProblem: Sync {
    /// Input of one (sub)problem.
    type Input: Send;
    /// Output of one (sub)problem.
    type Output: Send;

    /// Size `n` of an input, the quantity the recurrence is written in.
    fn size(&self, input: &Self::Input) -> usize;

    /// `true` when the input should be solved directly.
    fn is_base(&self, input: &Self::Input) -> bool;

    /// Solve a base case.
    fn solve_base(&self, input: Self::Input) -> Self::Output;

    /// Divide an input into `a ≥ 2` subproblems, in creation order.
    fn divide(&self, input: Self::Input) -> Vec<Self::Input>;

    /// Merge the sub-solutions (given in creation order) into the solution of
    /// the parent problem.  `size` is the size of the parent input.
    fn merge(&self, size: usize, outputs: Vec<Self::Output>) -> Self::Output;

    /// The recurrence `T(n) = a·T(n/b) + f(n)` describing the sequential
    /// algorithm, used to compare measured behaviour against Theorem 1.
    fn recurrence(&self) -> Recurrence;
}

/// Statistics gathered while solving a [`DncProblem`].
#[derive(Debug, Default)]
pub struct DncRun {
    /// Number of recursive calls (internal nodes of the execution tree).
    pub internal_nodes: AtomicU64,
    /// Number of base cases (leaves of the execution tree).
    pub leaves: AtomicU64,
}

impl DncRun {
    /// New, zeroed statistics block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recursive (internal) calls recorded.
    pub fn internal(&self) -> u64 {
        self.internal_nodes.load(Ordering::Relaxed)
    }

    /// Number of base cases recorded.
    pub fn base_cases(&self) -> u64 {
        self.leaves.load(Ordering::Relaxed)
    }

    /// Total nodes of the execution tree.
    pub fn total_nodes(&self) -> u64 {
        self.internal() + self.base_cases()
    }
}

/// Solve `input` sequentially (the `T(n) = T_1(n)` baseline).
pub fn solve_sequential<P: DncProblem>(problem: &P, input: P::Input) -> P::Output {
    let stats = DncRun::new();
    solve_with(problem, &lopram_core::SeqExecutor, input, &stats)
}

/// Solve `input` with the straightforward pal-thread parallelization on
/// `exec`, recording execution statistics in `stats`.
pub fn solve<P: DncProblem, E: Executor>(
    problem: &P,
    exec: &E,
    input: P::Input,
    stats: &DncRun,
) -> P::Output {
    solve_with(problem, exec, input, stats)
}

fn solve_with<P: DncProblem, E: Executor>(
    problem: &P,
    exec: &E,
    input: P::Input,
    stats: &DncRun,
) -> P::Output {
    if problem.is_base(&input) {
        stats.leaves.fetch_add(1, Ordering::Relaxed);
        return problem.solve_base(input);
    }
    stats.internal_nodes.fetch_add(1, Ordering::Relaxed);
    let size = problem.size(&input);
    let inputs = problem.divide(input);
    let count = inputs.len();
    assert!(count >= 2, "divide() must produce at least two subproblems");

    let outputs: Vec<P::Output> = if count == 2 {
        // The common binary case maps directly onto `palthreads { a; b; }`.
        let mut iter = inputs.into_iter();
        let first = iter.next().expect("two subproblems");
        let second = iter.next().expect("two subproblems");
        let (a, b) = exec.join(
            || solve_with(problem, exec, first, stats),
            || solve_with(problem, exec, second, stats),
        );
        vec![a, b]
    } else {
        // a-way palthreads block: recursively join pairs so every recursive
        // call still becomes its own pal-thread.
        let slots: Vec<Mutex<Option<P::Output>>> = (0..count).map(|_| Mutex::new(None)).collect();
        join_all(problem, exec, inputs, &slots, 0, stats);
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("every subproblem solved"))
            .collect()
    };
    problem.merge(size, outputs)
}

fn join_all<P: DncProblem, E: Executor>(
    problem: &P,
    exec: &E,
    mut inputs: Vec<P::Input>,
    slots: &[Mutex<Option<P::Output>>],
    offset: usize,
    stats: &DncRun,
) {
    match inputs.len() {
        0 => {}
        1 => {
            let input = inputs.pop().expect("one input");
            let out = solve_with(problem, exec, input, stats);
            *slots[offset].lock() = Some(out);
        }
        len => {
            let mid = len / 2;
            let rest = inputs.split_off(mid);
            exec.join(
                || join_all(problem, exec, inputs, slots, offset, stats),
                || join_all(problem, exec, rest, slots, offset + mid, stats),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lopram_analysis::Growth;
    use lopram_core::{PalPool, SeqExecutor};

    /// Sum of a vector by binary splitting: `T(n) = 2T(n/2) + 1`.
    struct SumProblem;

    impl DncProblem for SumProblem {
        type Input = Vec<i64>;
        type Output = i64;

        fn size(&self, input: &Vec<i64>) -> usize {
            input.len()
        }

        fn is_base(&self, input: &Vec<i64>) -> bool {
            input.len() <= 4
        }

        fn solve_base(&self, input: Vec<i64>) -> i64 {
            input.iter().sum()
        }

        fn divide(&self, mut input: Vec<i64>) -> Vec<Vec<i64>> {
            let rest = input.split_off(input.len() / 2);
            vec![input, rest]
        }

        fn merge(&self, _size: usize, outputs: Vec<i64>) -> i64 {
            outputs.iter().sum()
        }

        fn recurrence(&self) -> Recurrence {
            Recurrence::new(2, 2, Growth::constant(1.0))
        }
    }

    /// Four-way sum, to exercise the a > 2 path.
    struct FourWaySum;

    impl DncProblem for FourWaySum {
        type Input = Vec<i64>;
        type Output = i64;

        fn size(&self, input: &Vec<i64>) -> usize {
            input.len()
        }

        fn is_base(&self, input: &Vec<i64>) -> bool {
            input.len() <= 3
        }

        fn solve_base(&self, input: Vec<i64>) -> i64 {
            input.iter().sum()
        }

        fn divide(&self, input: Vec<i64>) -> Vec<Vec<i64>> {
            let quarter = (input.len() / 4).max(1);
            let mut parts = Vec::new();
            let mut rest = input;
            for _ in 0..3 {
                if rest.len() > quarter {
                    let tail = rest.split_off(quarter);
                    parts.push(rest);
                    rest = tail;
                } else {
                    break;
                }
            }
            parts.push(rest);
            parts
        }

        fn merge(&self, _size: usize, outputs: Vec<i64>) -> i64 {
            outputs.iter().sum()
        }

        fn recurrence(&self) -> Recurrence {
            Recurrence::new(4, 4, Growth::constant(1.0))
        }
    }

    #[test]
    fn sequential_solve_sums_correctly() {
        let data: Vec<i64> = (1..=1000).collect();
        assert_eq!(solve_sequential(&SumProblem, data), 500_500);
    }

    #[test]
    fn parallel_solve_matches_sequential() {
        let data: Vec<i64> = (1..=10_000).collect();
        let pool = PalPool::new(4).unwrap();
        let stats = DncRun::new();
        let par = solve(&SumProblem, &pool, data.clone(), &stats);
        let seq = solve_sequential(&SumProblem, data);
        assert_eq!(par, seq);
        assert!(stats.total_nodes() > 0);
    }

    #[test]
    fn statistics_count_tree_nodes() {
        // 16 elements with base size 4: 4 leaves + 3 internal nodes.
        let data: Vec<i64> = (0..16).collect();
        let stats = DncRun::new();
        let _ = solve(&SumProblem, &SeqExecutor, data, &stats);
        assert_eq!(stats.base_cases(), 4);
        assert_eq!(stats.internal(), 3);
        assert_eq!(stats.total_nodes(), 7);
    }

    #[test]
    fn multiway_divide_works_on_every_executor() {
        let data: Vec<i64> = (1..=999).collect();
        let expected: i64 = data.iter().sum();
        let stats = DncRun::new();
        assert_eq!(
            solve(&FourWaySum, &SeqExecutor, data.clone(), &stats),
            expected
        );
        let pool = PalPool::new(3).unwrap();
        let stats = DncRun::new();
        assert_eq!(solve(&FourWaySum, &pool, data, &stats), expected);
    }

    #[test]
    fn results_identical_for_every_p() {
        let data: Vec<i64> = (0..5000).map(|i| (i * 7919) % 1013 - 500).collect();
        let expected = solve_sequential(&SumProblem, data.clone());
        for p in [1usize, 2, 3, 4, 8] {
            let pool = PalPool::new(p).unwrap();
            let stats = DncRun::new();
            assert_eq!(solve(&SumProblem, &pool, data.clone(), &stats), expected);
        }
    }

    #[test]
    fn recurrence_classification_is_available_to_users() {
        use lopram_analysis::{sequential_master_bound, MasterCase};
        let rec = SumProblem.recurrence();
        assert_eq!(lopram_analysis::master::classify(&rec), MasterCase::Case1);
        assert!(sequential_master_bound(&rec).is_some());
    }
}
