//! Maximum contiguous subarray sum by divide and conquer.
//!
//! The classic `T(n) = 2T(n/2) + Θ(n)` (case 2) formulation: each half is a
//! pal-thread, and the crossing sum is computed sequentially by the parent.
//! Kadane's linear scan is included as the correctness oracle for tests.

use lopram_core::Executor;

/// Summary of a segment used to combine divide-and-conquer results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentSummary {
    /// Best subarray sum fully inside the segment (empty subarray allowed: 0).
    pub best: i64,
    /// Best prefix sum of the segment.
    pub prefix: i64,
    /// Best suffix sum of the segment.
    pub suffix: i64,
    /// Total sum of the segment.
    pub total: i64,
}

impl SegmentSummary {
    fn leaf(values: &[i64]) -> Self {
        let mut best = 0;
        let mut cur = 0;
        let mut prefix = 0;
        let mut run = 0;
        for &v in values {
            cur = (cur + v).max(0);
            best = best.max(cur);
            run += v;
            prefix = prefix.max(run);
        }
        let mut suffix = 0;
        let mut run = 0;
        for &v in values.iter().rev() {
            run += v;
            suffix = suffix.max(run);
        }
        SegmentSummary {
            best,
            prefix,
            suffix,
            total: values.iter().sum(),
        }
    }

    /// Combine the summaries of two adjacent segments.
    pub fn combine(left: SegmentSummary, right: SegmentSummary) -> SegmentSummary {
        SegmentSummary {
            best: left.best.max(right.best).max(left.suffix + right.prefix),
            prefix: left.prefix.max(left.total + right.prefix),
            suffix: right.suffix.max(right.total + left.suffix),
            total: left.total + right.total,
        }
    }
}

/// Sequential divide-and-conquer maximum subarray sum (empty subarray counts
/// as 0, so the result is never negative).
pub fn max_subarray_seq(values: &[i64]) -> i64 {
    summarize(&lopram_core::SeqExecutor, values, 64).best
}

/// Pal-thread maximum subarray sum.
pub fn max_subarray<E: Executor>(exec: &E, values: &[i64]) -> i64 {
    summarize(exec, values, 256).best
}

/// Pal-thread maximum subarray with an explicit sequential grain.
pub fn max_subarray_with_grain<E: Executor>(exec: &E, values: &[i64], grain: usize) -> i64 {
    summarize(exec, values, grain.max(1)).best
}

fn summarize<E: Executor>(exec: &E, values: &[i64], grain: usize) -> SegmentSummary {
    if values.len() <= grain {
        return SegmentSummary::leaf(values);
    }
    let mid = values.len() / 2;
    let (left, right) = values.split_at(mid);
    let (ls, rs) = exec.join(
        || summarize(exec, left, grain),
        || summarize(exec, right, grain),
    );
    SegmentSummary::combine(ls, rs)
}

/// Kadane's linear-time maximum subarray sum, the oracle used in tests.
pub fn kadane(values: &[i64]) -> i64 {
    let mut best = 0i64;
    let mut cur = 0i64;
    for &v in values {
        cur = (cur + v).max(0);
        best = best.max(cur);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use lopram_core::{PalPool, SeqExecutor};
    use proptest::prelude::*;
    use rand::prelude::*;

    #[test]
    fn known_small_cases() {
        assert_eq!(max_subarray_seq(&[]), 0);
        assert_eq!(max_subarray_seq(&[-5]), 0);
        assert_eq!(max_subarray_seq(&[3]), 3);
        assert_eq!(max_subarray_seq(&[-2, 1, -3, 4, -1, 2, 1, -5, 4]), 6);
        assert_eq!(max_subarray_seq(&[-1, -2, -3]), 0);
        assert_eq!(max_subarray_seq(&[1, 2, 3, 4]), 10);
    }

    #[test]
    fn divide_and_conquer_matches_kadane_on_random_input() {
        let mut rng = StdRng::seed_from_u64(2024);
        let values: Vec<i64> = (0..50_000).map(|_| rng.gen_range(-100..100)).collect();
        let pool = PalPool::new(4).unwrap();
        assert_eq!(max_subarray(&pool, &values), kadane(&values));
        assert_eq!(max_subarray_seq(&values), kadane(&values));
    }

    #[test]
    fn summary_combine_is_consistent_with_concatenation() {
        let a = [3i64, -1, 2];
        let b = [-4i64, 5, -2, 6];
        let combined = SegmentSummary::combine(SegmentSummary::leaf(&a), SegmentSummary::leaf(&b));
        let concat: Vec<i64> = a.iter().chain(b.iter()).copied().collect();
        assert_eq!(combined.best, kadane(&concat));
        assert_eq!(combined.total, concat.iter().sum::<i64>());
    }

    #[test]
    fn results_identical_for_any_p() {
        let mut rng = StdRng::seed_from_u64(7);
        let values: Vec<i64> = (0..20_000).map(|_| rng.gen_range(-50..50)).collect();
        let expected = kadane(&values);
        for p in [1usize, 2, 4, 8] {
            let pool = PalPool::new(p).unwrap();
            assert_eq!(max_subarray(&pool, &values), expected, "p = {p}");
        }
    }

    #[test]
    fn small_grain_still_correct() {
        let values: Vec<i64> = vec![5, -9, 6, -2, 3, -1, 8, -20, 4, 4];
        assert_eq!(
            max_subarray_with_grain(&SeqExecutor, &values, 1),
            kadane(&values)
        );
    }

    proptest! {
        #[test]
        fn prop_matches_kadane(values in proptest::collection::vec(-1000i64..1000, 0..400)) {
            let pool = PalPool::new(3).unwrap();
            prop_assert_eq!(max_subarray_with_grain(&pool, &values, 8), kadane(&values));
        }

        #[test]
        fn prop_result_is_achievable_or_zero(values in proptest::collection::vec(-100i64..100, 1..200)) {
            let best = max_subarray_seq(&values);
            prop_assert!(best >= 0);
            // The best sum is at least every single element.
            for &v in &values {
                prop_assert!(best >= v.max(0));
            }
        }
    }
}
