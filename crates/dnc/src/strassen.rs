//! Strassen matrix multiplication — Master-theorem case 1 with a large `a`.
//!
//! Strassen's identity reduces one `n × n` product to seven half-size
//! products and `Θ(n²)` additions: `T(n) = 7T(n/2) + Θ(n²)`, case 1
//! (`n^{log₂7} ≈ n^{2.81}` dominates), so Theorem 1 promises `O(T(n)/p)`.
//! The seven recursive products are created as pal-threads.  The classical
//! eight-product blocked recursion (`8T(n/2) + Θ(n²)`, also case 1) is
//! provided as well, since the experiment harness compares both against the
//! naive `Θ(n³)` baseline.

use lopram_core::Executor;
use parking_lot::Mutex;

use crate::matrix::Matrix;

/// Side length below which multiplication falls back to the naive kernel.
pub const DEFAULT_GRAIN: usize = 64;

/// Sequential Strassen multiplication.
pub fn strassen_mul_seq(a: &Matrix, b: &Matrix) -> Matrix {
    strassen_mul(&lopram_core::SeqExecutor, a, b)
}

/// Pal-thread Strassen multiplication.
pub fn strassen_mul<E: Executor>(exec: &E, a: &Matrix, b: &Matrix) -> Matrix {
    strassen_mul_with_grain(exec, a, b, DEFAULT_GRAIN)
}

/// Pal-thread Strassen multiplication with an explicit base-case side length.
pub fn strassen_mul_with_grain<E: Executor>(
    exec: &E,
    a: &Matrix,
    b: &Matrix,
    grain: usize,
) -> Matrix {
    assert_eq!(a.size(), b.size(), "matrix sizes must match");
    let n = a.size();
    if n == 0 {
        return Matrix::zeros(0);
    }
    let padded = n.next_power_of_two();
    if padded != n {
        let result = strassen_rec(exec, &a.padded(padded), &b.padded(padded), grain.max(1));
        return result.truncated(n);
    }
    strassen_rec(exec, a, b, grain.max(1))
}

fn strassen_rec<E: Executor>(exec: &E, a: &Matrix, b: &Matrix, grain: usize) -> Matrix {
    let n = a.size();
    if n <= grain || !n.is_multiple_of(2) {
        return a.naive_mul(b);
    }
    let a11 = a.quadrant(0, 0);
    let a12 = a.quadrant(0, 1);
    let a21 = a.quadrant(1, 0);
    let a22 = a.quadrant(1, 1);
    let b11 = b.quadrant(0, 0);
    let b12 = b.quadrant(0, 1);
    let b21 = b.quadrant(1, 0);
    let b22 = b.quadrant(1, 1);

    // The seven Strassen products, each as a pal-thread.
    let tasks: Vec<Box<dyn Fn() -> Matrix + Send + Sync>> = vec![
        Box::new({
            let (l, r) = (&a11 + &a22, &b11 + &b22);
            let exec_n = grain;
            move || strassen_clone(&l, &r, exec_n)
        }),
        Box::new({
            let (l, r) = (&a21 + &a22, b11.clone());
            move || strassen_clone(&l, &r, grain)
        }),
        Box::new({
            let (l, r) = (a11.clone(), &b12 - &b22);
            move || strassen_clone(&l, &r, grain)
        }),
        Box::new({
            let (l, r) = (a22.clone(), &b21 - &b11);
            move || strassen_clone(&l, &r, grain)
        }),
        Box::new({
            let (l, r) = (&a11 + &a12, b22.clone());
            move || strassen_clone(&l, &r, grain)
        }),
        Box::new({
            let (l, r) = (&a21 - &a11, &b11 + &b12);
            move || strassen_clone(&l, &r, grain)
        }),
        Box::new({
            let (l, r) = (&a12 - &a22, &b21 + &b22);
            move || strassen_clone(&l, &r, grain)
        }),
    ];
    let products = run_tasks(exec, &tasks);
    let [m1, m2, m3, m4, m5, m6, m7]: [Matrix; 7] =
        products.try_into().expect("exactly seven products");

    let c11 = &(&(&m1 + &m4) - &m5) + &m7;
    let c12 = &m3 + &m5;
    let c21 = &m2 + &m4;
    let c22 = &(&(&m1 - &m2) + &m3) + &m6;
    Matrix::from_quadrants(&c11, &c12, &c21, &c22)
}

// Helper used inside the boxed tasks: a sequential Strassen recursion.  The
// pal-threads are created one level at a time (the seven products of the
// current level), which is already enough to occupy p = O(log n) processors;
// deeper levels run sequentially exactly as the paper's scheduler would.
fn strassen_clone(a: &Matrix, b: &Matrix, grain: usize) -> Matrix {
    strassen_rec(&lopram_core::SeqExecutor, a, b, grain)
}

fn run_tasks<E: Executor>(
    exec: &E,
    tasks: &[Box<dyn Fn() -> Matrix + Send + Sync>],
) -> Vec<Matrix> {
    let slots: Vec<Mutex<Option<Matrix>>> = tasks.iter().map(|_| Mutex::new(None)).collect();
    run_range(exec, tasks, &slots, 0, tasks.len());
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("task executed"))
        .collect()
}

fn run_range<E: Executor>(
    exec: &E,
    tasks: &[Box<dyn Fn() -> Matrix + Send + Sync>],
    slots: &[Mutex<Option<Matrix>>],
    lo: usize,
    hi: usize,
) {
    if hi - lo == 1 {
        *slots[lo].lock() = Some(tasks[lo]());
        return;
    }
    let mid = lo + (hi - lo) / 2;
    exec.join(
        || run_range(exec, tasks, slots, lo, mid),
        || run_range(exec, tasks, slots, mid, hi),
    );
}

/// Pal-thread blocked multiplication with all eight quadrant products
/// (`T(n) = 8T(n/2) + Θ(n²)`), the non-Strassen divide-and-conquer baseline.
pub fn blocked_mul<E: Executor>(exec: &E, a: &Matrix, b: &Matrix, grain: usize) -> Matrix {
    assert_eq!(a.size(), b.size(), "matrix sizes must match");
    let n = a.size();
    if n == 0 {
        return Matrix::zeros(0);
    }
    let padded = n.next_power_of_two();
    if padded != n {
        return blocked_rec(exec, &a.padded(padded), &b.padded(padded), grain.max(1)).truncated(n);
    }
    blocked_rec(exec, a, b, grain.max(1))
}

fn blocked_rec<E: Executor>(exec: &E, a: &Matrix, b: &Matrix, grain: usize) -> Matrix {
    let n = a.size();
    if n <= grain || !n.is_multiple_of(2) {
        return a.naive_mul(b);
    }
    let a11 = a.quadrant(0, 0);
    let a12 = a.quadrant(0, 1);
    let a21 = a.quadrant(1, 0);
    let a22 = a.quadrant(1, 1);
    let b11 = b.quadrant(0, 0);
    let b12 = b.quadrant(0, 1);
    let b21 = b.quadrant(1, 0);
    let b22 = b.quadrant(1, 1);

    let ((c11, c12), (c21, c22)) = exec.join(
        || {
            exec.join(
                || &blocked_rec(exec, &a11, &b11, grain) + &blocked_rec(exec, &a12, &b21, grain),
                || &blocked_rec(exec, &a11, &b12, grain) + &blocked_rec(exec, &a12, &b22, grain),
            )
        },
        || {
            exec.join(
                || &blocked_rec(exec, &a21, &b11, grain) + &blocked_rec(exec, &a22, &b21, grain),
                || &blocked_rec(exec, &a21, &b12, grain) + &blocked_rec(exec, &a22, &b22, grain),
            )
        },
    );
    Matrix::from_quadrants(&c11, &c12, &c21, &c22)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lopram_core::{PalPool, SeqExecutor};
    use rand::prelude::*;

    fn random_matrix(n: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_fn(n, |_, _| rng.gen_range(-5.0..5.0))
    }

    #[test]
    fn strassen_matches_naive_power_of_two() {
        let pool = PalPool::new(4).unwrap();
        for n in [2usize, 4, 8, 32, 64] {
            let a = random_matrix(n, n as u64);
            let b = random_matrix(n, n as u64 + 100);
            let expected = a.naive_mul(&b);
            let got = strassen_mul_with_grain(&pool, &a, &b, 8);
            assert!(
                got.max_abs_diff(&expected) < 1e-6,
                "n = {n}, diff = {}",
                got.max_abs_diff(&expected)
            );
        }
    }

    #[test]
    fn strassen_handles_non_power_of_two() {
        let a = random_matrix(13, 1);
        let b = random_matrix(13, 2);
        let expected = a.naive_mul(&b);
        let got = strassen_mul_with_grain(&SeqExecutor, &a, &b, 4);
        assert!(got.max_abs_diff(&expected) < 1e-6);
    }

    #[test]
    fn strassen_identity_and_zero() {
        let a = random_matrix(16, 3);
        let id = Matrix::identity(16);
        let z = Matrix::zeros(16);
        assert!(strassen_mul_seq(&a, &id).max_abs_diff(&a) < 1e-9);
        assert!(strassen_mul_seq(&a, &z).max_abs_diff(&z) < 1e-9);
    }

    #[test]
    fn blocked_mul_matches_naive() {
        let pool = PalPool::new(4).unwrap();
        let a = random_matrix(32, 11);
        let b = random_matrix(32, 12);
        let expected = a.naive_mul(&b);
        let got = blocked_mul(&pool, &a, &b, 8);
        assert!(got.max_abs_diff(&expected) < 1e-8);
    }

    #[test]
    fn results_identical_for_any_p() {
        let a = random_matrix(48, 21);
        let b = random_matrix(48, 22);
        let expected = a.naive_mul(&b);
        for p in [1usize, 2, 4, 7] {
            let pool = PalPool::new(p).unwrap();
            let got = strassen_mul_with_grain(&pool, &a, &b, 8);
            assert!(got.max_abs_diff(&expected) < 1e-6, "p = {p}");
        }
    }

    #[test]
    fn empty_matrix_product() {
        let a = Matrix::zeros(0);
        let b = Matrix::zeros(0);
        assert_eq!(strassen_mul_seq(&a, &b).size(), 0);
    }
}
