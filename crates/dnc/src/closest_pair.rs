//! Closest pair of points in the plane by divide and conquer.
//!
//! After an initial sort by `x` the recursion follows the case-2 recurrence
//! `T(n) = 2T(n/2) + Θ(n)`: the two halves become pal-threads and the strip
//! check around the dividing line is the sequential merge.  A quadratic
//! brute-force scan is used as the oracle in tests.

use lopram_core::Executor;

/// A point in the plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Create a point.
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    pub fn distance(&self, other: &Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// Brute-force closest-pair distance, `O(n²)`; the oracle for tests and the
/// base case of the recursion.
pub fn brute_force(points: &[Point]) -> f64 {
    let mut best = f64::INFINITY;
    for i in 0..points.len() {
        for j in i + 1..points.len() {
            best = best.min(points[i].distance(&points[j]));
        }
    }
    best
}

/// Sequential divide-and-conquer closest pair.
pub fn closest_pair_seq(points: &[Point]) -> f64 {
    closest_pair(&lopram_core::SeqExecutor, points)
}

/// Pal-thread closest pair: returns the smallest pairwise distance, or
/// `f64::INFINITY` for fewer than two points.
pub fn closest_pair<E: Executor>(exec: &E, points: &[Point]) -> f64 {
    if points.len() < 2 {
        return f64::INFINITY;
    }
    let mut by_x: Vec<Point> = points.to_vec();
    by_x.sort_by(|a, b| a.x.partial_cmp(&b.x).expect("finite coordinates"));
    recurse(exec, &by_x, 32)
}

fn recurse<E: Executor>(exec: &E, points: &[Point], grain: usize) -> f64 {
    if points.len() <= grain.max(3) {
        return brute_force(points);
    }
    let mid = points.len() / 2;
    let mid_x = points[mid].x;
    let (left, right) = points.split_at(mid);
    let (dl, dr) = exec.join(
        || recurse(exec, left, grain),
        || recurse(exec, right, grain),
    );
    let mut best = dl.min(dr);

    // Strip check: points within `best` of the dividing line, sorted by y.
    let mut strip: Vec<Point> = points
        .iter()
        .filter(|p| (p.x - mid_x).abs() < best)
        .copied()
        .collect();
    strip.sort_by(|a, b| a.y.partial_cmp(&b.y).expect("finite coordinates"));
    for i in 0..strip.len() {
        for j in i + 1..strip.len() {
            if strip[j].y - strip[i].y >= best {
                break;
            }
            best = best.min(strip[i].distance(&strip[j]));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use lopram_core::PalPool;
    use proptest::prelude::*;
    use rand::prelude::*;

    fn random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Point::new(
                    rng.gen_range(-1000.0..1000.0),
                    rng.gen_range(-1000.0..1000.0),
                )
            })
            .collect()
    }

    #[test]
    fn trivial_cases() {
        assert_eq!(closest_pair_seq(&[]), f64::INFINITY);
        assert_eq!(closest_pair_seq(&[Point::new(1.0, 1.0)]), f64::INFINITY);
        let two = [Point::new(0.0, 0.0), Point::new(3.0, 4.0)];
        assert!((closest_pair_seq(&two) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn matches_brute_force_on_random_inputs() {
        let pool = PalPool::new(4).unwrap();
        for n in [10usize, 100, 500, 2000] {
            let pts = random_points(n, n as u64);
            let expected = brute_force(&pts);
            let got = closest_pair(&pool, &pts);
            assert!(
                (got - expected).abs() < 1e-9,
                "n = {n}: {got} vs {expected}"
            );
        }
    }

    #[test]
    fn duplicate_points_give_zero_distance() {
        let pool = PalPool::new(2).unwrap();
        let mut pts = random_points(200, 5);
        pts.push(pts[17]);
        assert!(closest_pair(&pool, &pts).abs() < 1e-12);
    }

    #[test]
    fn collinear_points() {
        let pts: Vec<Point> = (0..100).map(|i| Point::new(i as f64 * 2.0, 0.0)).collect();
        assert!((closest_pair_seq(&pts) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn results_identical_for_any_p() {
        let pts = random_points(3000, 77);
        let expected = closest_pair_seq(&pts);
        for p in [1usize, 2, 4, 8] {
            let pool = PalPool::new(p).unwrap();
            let got = closest_pair(&pool, &pts);
            assert!((got - expected).abs() < 1e-9, "p = {p}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_matches_brute_force(
            coords in proptest::collection::vec((-100i32..100, -100i32..100), 2..80)
        ) {
            let pts: Vec<Point> = coords
                .iter()
                .map(|&(x, y)| Point::new(x as f64, y as f64))
                .collect();
            let pool = PalPool::new(2).unwrap();
            let expected = brute_force(&pts);
            let got = closest_pair(&pool, &pts);
            prop_assert!((got - expected).abs() < 1e-9);
        }
    }
}
