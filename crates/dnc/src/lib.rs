//! # lopram-dnc
//!
//! The divide-and-conquer half of the paper's §4: a generic framework plus a
//! suite of classic algorithms, each available in a sequential version and in
//! the "straightforward parallelization" the paper analyses — recursive calls
//! become pal-threads, nothing else changes.  Which Master-theorem case an
//! algorithm falls into determines the speedup the paper's Theorem 1
//! promises; the algorithms here are chosen to cover all three cases:
//!
//! | algorithm | recurrence | case | promised speedup |
//! |-----------|------------|------|------------------|
//! | [`karatsuba`], [`polymul`] | `3T(n/2)+n`, `4T(n/2)+n` | 1 | `O(T/p)` |
//! | [`strassen`] | `7T(n/2)+n²` | 1 | `O(T/p)` |
//! | [`mergesort`], [`max_subarray`], [`closest_pair`], [`quicksort`]¹ | `2T(n/2)+n` | 2 | `O(T/p)` |
//! | [`case3`] | `2T(n/2)+n²` | 3 | none (sequential merge), `Θ(f/p)` (parallel merge) |
//!
//! ¹ quicksort's split is randomised, so its recurrence holds in expectation.
//!
//! All parallel entry points are generic over
//! [`Executor`](lopram_core::Executor), so the same code runs sequentially
//! (`SeqExecutor`), on the pal-thread pool (`PalPool`) or on the throttled
//! ablation pool.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod case3;
pub mod closest_pair;
pub mod framework;
pub mod karatsuba;
pub mod matrix;
pub mod max_subarray;
pub mod mergesort;
pub mod polymul;
pub mod quicksort;

pub use framework::{solve, solve_sequential, DncProblem, DncRun};
pub use matrix::Matrix;

/// Convenience prelude for the divide-and-conquer crate.
pub mod prelude {
    pub use crate::case3::{cross_product_sum, cross_product_sum_seq, CrossMergeMode};
    pub use crate::closest_pair::{closest_pair, closest_pair_seq, Point};
    pub use crate::framework::{solve, solve_sequential, DncProblem, DncRun};
    pub use crate::karatsuba::{karatsuba_mul, karatsuba_mul_seq, schoolbook_mul};
    pub use crate::matrix::Matrix;
    pub use crate::max_subarray::{max_subarray, max_subarray_seq};
    pub use crate::mergesort::{merge_sort, merge_sort_parallel_merge, merge_sort_seq};
    pub use crate::polymul::{polymul_four_way, polymul_seq};
    pub use crate::quicksort::{quick_sort, quick_sort_seq};
    pub use crate::strassen::{strassen_mul, strassen_mul_seq};
}

pub mod strassen;
