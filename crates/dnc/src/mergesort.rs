//! Mergesort — the paper's flagship example (§3.1, Figure 1).
//!
//! `merge_sort` is the literal Rust translation of the paper's
//! `m_sort`/`palthreads` listing: the two recursive calls become pal-threads
//! and the merge runs sequentially in the parent, giving the case-2
//! recurrence `T(n) = 2T(n/2) + n` and hence `T_p(n) = O(T(n)/p)`
//! (Theorem 1).  `merge_sort_parallel_merge` additionally parallelises the
//! merge itself by splitting around the median of the larger half, which is
//! the ingredient the paper's Eq. 5 needs in general (for mergesort it only
//! improves constants, since case 2 is already work-optimal).

use lopram_core::Executor;

/// Size below which recursion switches to a simple insertion sort.  The
/// paper's model charges unit cost per element; on real hardware a small
/// sequential grain avoids drowning in pal-thread bookkeeping.
pub const DEFAULT_GRAIN: usize = 64;

/// Sequential mergesort (the `T_1` baseline).
pub fn merge_sort_seq<T: Ord + Copy>(data: &mut [T]) {
    let mut temp = data.to_vec();
    msort_seq(data, &mut temp);
}

fn msort_seq<T: Ord + Copy>(data: &mut [T], temp: &mut [T]) {
    if data.len() <= 16 {
        insertion_sort(data);
        return;
    }
    let n = data.len();
    let mid = n / 2;
    let (dl, dr) = data.split_at_mut(mid);
    let (tl, tr) = temp.split_at_mut(mid);
    msort_seq(dl, tl);
    msort_seq(dr, tr);
    merge_into(dl, dr, temp);
    data.copy_from_slice(&temp[..n]);
}

/// Pal-thread mergesort with a sequential merge (the paper's listing).
pub fn merge_sort<T, E>(exec: &E, data: &mut [T])
where
    T: Ord + Copy + Send + Sync,
    E: Executor,
{
    merge_sort_with_grain(exec, data, DEFAULT_GRAIN);
}

/// Pal-thread mergesort with an explicit sequential-cutoff grain.
pub fn merge_sort_with_grain<T, E>(exec: &E, data: &mut [T], grain: usize)
where
    T: Ord + Copy + Send + Sync,
    E: Executor,
{
    let mut temp = data.to_vec();
    msort_par(exec, data, &mut temp, grain.max(2), false);
}

/// Pal-thread mergesort whose merge phase is itself parallelised (Eq. 5).
pub fn merge_sort_parallel_merge<T, E>(exec: &E, data: &mut [T])
where
    T: Ord + Copy + Send + Sync,
    E: Executor,
{
    let mut temp = data.to_vec();
    msort_par(exec, data, &mut temp, DEFAULT_GRAIN, true);
}

fn msort_par<T, E>(exec: &E, data: &mut [T], temp: &mut [T], grain: usize, parallel_merge: bool)
where
    T: Ord + Copy + Send + Sync,
    E: Executor,
{
    if data.len() <= grain {
        insertion_sort(data);
        return;
    }
    let n = data.len();
    let mid = n / 2;
    let (dl, dr) = data.split_at_mut(mid);
    let (tl, tr) = temp.split_at_mut(mid);
    // palthreads { m_sort(left); m_sort(right); }
    exec.join(
        || msort_par(exec, dl, tl, grain, parallel_merge),
        || msort_par(exec, dr, tr, grain, parallel_merge),
    );
    if parallel_merge {
        merge_parallel(exec, dl, dr, temp, grain);
    } else {
        merge_into(dl, dr, temp);
    }
    data.copy_from_slice(&temp[..n]);
}

/// Merge two sorted runs into `out` (sequentially).
pub fn merge_into<T: Ord + Copy>(left: &[T], right: &[T], out: &mut [T]) {
    debug_assert!(out.len() >= left.len() + right.len());
    let (mut i, mut j, mut k) = (0, 0, 0);
    while i < left.len() && j < right.len() {
        if left[i] <= right[j] {
            out[k] = left[i];
            i += 1;
        } else {
            out[k] = right[j];
            j += 1;
        }
        k += 1;
    }
    while i < left.len() {
        out[k] = left[i];
        i += 1;
        k += 1;
    }
    while j < right.len() {
        out[k] = right[j];
        j += 1;
        k += 1;
    }
}

/// Merge two sorted runs into `out`, splitting the work across pal-threads:
/// the larger run is cut at its median, the smaller run is cut at the
/// corresponding binary-search position, and the two halves are merged as
/// independent pal-threads.
pub fn merge_parallel<T, E>(exec: &E, left: &[T], right: &[T], out: &mut [T], grain: usize)
where
    T: Ord + Copy + Send + Sync,
    E: Executor,
{
    let total = left.len() + right.len();
    if total <= grain.max(2) || left.is_empty() || right.is_empty() {
        merge_into(left, right, &mut out[..total]);
        return;
    }
    // Cut the larger run at its midpoint and the smaller one by binary search.
    let (l_split, r_split) = if left.len() >= right.len() {
        let lm = left.len() / 2;
        (lm, right.partition_point(|x| *x < left[lm]))
    } else {
        let rm = right.len() / 2;
        (left.partition_point(|x| *x <= right[rm]), rm)
    };
    let cut = l_split + r_split;
    let (left_lo, left_hi) = left.split_at(l_split);
    let (right_lo, right_hi) = right.split_at(r_split);
    let (out_lo, out_hi) = out.split_at_mut(cut);
    exec.join(
        || merge_parallel(exec, left_lo, right_lo, out_lo, grain),
        || merge_parallel(exec, left_hi, right_hi, out_hi, grain),
    );
}

fn insertion_sort<T: Ord + Copy>(data: &mut [T]) {
    for i in 1..data.len() {
        let key = data[i];
        let mut j = i;
        while j > 0 && data[j - 1] > key {
            data[j] = data[j - 1];
            j -= 1;
        }
        data[j] = key;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lopram_core::{PalPool, SeqExecutor};
    use proptest::prelude::*;
    use rand::prelude::*;

    fn random_vec(n: usize, seed: u64) -> Vec<i64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| rng.gen_range(-1_000_000..1_000_000))
            .collect()
    }

    #[test]
    fn sequential_sorts() {
        let mut v = random_vec(1000, 1);
        let mut expected = v.clone();
        expected.sort();
        merge_sort_seq(&mut v);
        assert_eq!(v, expected);
    }

    #[test]
    fn parallel_sorts_match_std_sort() {
        let pool = PalPool::new(4).unwrap();
        for n in [0usize, 1, 2, 17, 128, 1000, 4097] {
            let mut v = random_vec(n, n as u64);
            let mut expected = v.clone();
            expected.sort();
            merge_sort(&pool, &mut v);
            assert_eq!(v, expected, "n = {n}");
        }
    }

    #[test]
    fn parallel_merge_variant_sorts() {
        let pool = PalPool::new(4).unwrap();
        let mut v = random_vec(10_000, 99);
        let mut expected = v.clone();
        expected.sort();
        merge_sort_parallel_merge(&pool, &mut v);
        assert_eq!(v, expected);
    }

    #[test]
    fn works_on_sequential_executor() {
        let mut v = random_vec(500, 7);
        let mut expected = v.clone();
        expected.sort();
        merge_sort(&SeqExecutor, &mut v);
        assert_eq!(v, expected);
    }

    #[test]
    fn sorts_already_sorted_and_reversed_inputs() {
        let pool = PalPool::new(2).unwrap();
        let mut asc: Vec<i64> = (0..2000).collect();
        let expected = asc.clone();
        merge_sort(&pool, &mut asc);
        assert_eq!(asc, expected);

        let mut desc: Vec<i64> = (0..2000).rev().collect();
        merge_sort(&pool, &mut desc);
        assert_eq!(desc, expected);
    }

    #[test]
    fn sorts_with_duplicates() {
        let pool = PalPool::new(4).unwrap();
        let mut v: Vec<i64> = (0..5000).map(|i| i % 7).collect();
        let mut expected = v.clone();
        expected.sort();
        merge_sort(&pool, &mut v);
        assert_eq!(v, expected);
    }

    #[test]
    fn merge_into_handles_empty_sides() {
        let mut out = vec![0; 3];
        merge_into(&[], &[1, 2, 3], &mut out);
        assert_eq!(out, vec![1, 2, 3]);
        merge_into(&[1, 2, 3], &[], &mut out);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn merge_parallel_equals_sequential_merge() {
        let pool = PalPool::new(4).unwrap();
        let left: Vec<i64> = (0..1000).map(|i| i * 2).collect();
        let right: Vec<i64> = (0..800).map(|i| i * 3 + 1).collect();
        let mut out_seq = vec![0i64; 1800];
        let mut out_par = vec![0i64; 1800];
        merge_into(&left, &right, &mut out_seq);
        merge_parallel(&pool, &left, &right, &mut out_par, 32);
        assert_eq!(out_seq, out_par);
    }

    #[test]
    fn results_identical_for_any_p() {
        let reference = {
            let mut v = random_vec(3000, 42);
            v.sort();
            v
        };
        for p in [1usize, 2, 3, 5, 8] {
            let pool = PalPool::new(p).unwrap();
            let mut v = random_vec(3000, 42);
            merge_sort(&pool, &mut v);
            assert_eq!(v, reference, "p = {p}");
        }
    }

    proptest! {
        #[test]
        fn prop_parallel_sort_is_a_sorted_permutation(mut v in proptest::collection::vec(-1000i64..1000, 0..500)) {
            let pool = PalPool::new(3).unwrap();
            let mut expected = v.clone();
            expected.sort();
            merge_sort_with_grain(&pool, &mut v, 8);
            prop_assert_eq!(v, expected);
        }

        #[test]
        fn prop_parallel_merge_merges(mut a in proptest::collection::vec(-500i64..500, 0..300),
                                      mut b in proptest::collection::vec(-500i64..500, 0..300)) {
            a.sort();
            b.sort();
            let mut expected: Vec<i64> = a.iter().chain(b.iter()).copied().collect();
            expected.sort();
            let mut out = vec![0i64; a.len() + b.len()];
            merge_parallel(&SeqExecutor, &a, &b, &mut out, 4);
            prop_assert_eq!(out, expected);
        }
    }
}
