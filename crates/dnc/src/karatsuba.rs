//! Karatsuba polynomial multiplication — Master-theorem case 1.
//!
//! Polynomials are dense coefficient vectors over `i64` (products are
//! accumulated in `i128` to stay exact).  Karatsuba replaces the four
//! half-size products of the naive split with three, giving
//! `T(n) = 3T(n/2) + Θ(n)` — case 1, so Theorem 1 promises `O(T(n)/p)` when
//! the three recursive products become pal-threads.  [`schoolbook_mul`] is
//! the `Θ(n²)` oracle used by tests.

use lopram_core::Executor;

/// Multiply two coefficient vectors with the `Θ(n²)` schoolbook algorithm.
pub fn schoolbook_mul(a: &[i64], b: &[i64]) -> Vec<i64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0i128; a.len() + b.len() - 1];
    for (i, &x) in a.iter().enumerate() {
        for (j, &y) in b.iter().enumerate() {
            out[i + j] += x as i128 * y as i128;
        }
    }
    out.into_iter()
        .map(|c| i64::try_from(c).expect("coefficient overflow in schoolbook_mul"))
        .collect()
}

/// Sequential Karatsuba multiplication.
pub fn karatsuba_mul_seq(a: &[i64], b: &[i64]) -> Vec<i64> {
    karatsuba_mul(&lopram_core::SeqExecutor, a, b)
}

/// Pal-thread Karatsuba multiplication: the three recursive products are
/// created as pal-threads.
pub fn karatsuba_mul<E: Executor>(exec: &E, a: &[i64], b: &[i64]) -> Vec<i64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    karatsuba(exec, a, b, 32)
}

/// Pal-thread Karatsuba with an explicit base-case threshold.
pub fn karatsuba_mul_with_grain<E: Executor>(
    exec: &E,
    a: &[i64],
    b: &[i64],
    grain: usize,
) -> Vec<i64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    karatsuba(exec, a, b, grain.max(1))
}

fn karatsuba<E: Executor>(exec: &E, a: &[i64], b: &[i64], grain: usize) -> Vec<i64> {
    let n = a.len().max(b.len());
    if n <= grain {
        return schoolbook_mul(a, b);
    }
    let half = n.div_ceil(2);
    let (a_lo, a_hi) = split(a, half);
    let (b_lo, b_hi) = split(b, half);
    let a_sum = add(a_lo, a_hi);
    let b_sum = add(b_lo, b_hi);

    // palthreads { low = a_lo*b_lo ; high = a_hi*b_hi ; mid = (a_lo+a_hi)(b_lo+b_hi) }
    let ((low, high), mid) = exec.join(
        || {
            exec.join(
                || karatsuba(exec, a_lo, b_lo, grain),
                || karatsuba(exec, a_hi, b_hi, grain),
            )
        },
        || karatsuba(exec, &a_sum, &b_sum, grain),
    );

    // mid - low - high is the cross term.
    let mut cross = mid;
    sub_assign(&mut cross, &low);
    sub_assign(&mut cross, &high);

    let mut out = vec![0i64; a.len() + b.len() - 1];
    add_shifted(&mut out, &low, 0);
    add_shifted(&mut out, &cross, half);
    add_shifted(&mut out, &high, 2 * half);
    out
}

fn split(poly: &[i64], half: usize) -> (&[i64], &[i64]) {
    if poly.len() <= half {
        (poly, &[])
    } else {
        poly.split_at(half)
    }
}

fn add(a: &[i64], b: &[i64]) -> Vec<i64> {
    let n = a.len().max(b.len());
    let mut out = vec![0i64; n];
    for (i, slot) in out.iter_mut().enumerate() {
        let x = a.get(i).copied().unwrap_or(0);
        let y = b.get(i).copied().unwrap_or(0);
        *slot = x + y;
    }
    out
}

fn sub_assign(target: &mut Vec<i64>, other: &[i64]) {
    if target.len() < other.len() {
        target.resize(other.len(), 0);
    }
    for (i, &v) in other.iter().enumerate() {
        target[i] -= v;
    }
}

fn add_shifted(out: &mut [i64], poly: &[i64], shift: usize) {
    for (i, &v) in poly.iter().enumerate() {
        if v != 0 {
            out[i + shift] += v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lopram_core::{PalPool, SeqExecutor};
    use proptest::prelude::*;
    use rand::prelude::*;

    fn random_poly(n: usize, seed: u64) -> Vec<i64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(-100..100)).collect()
    }

    #[test]
    fn schoolbook_known_product() {
        // (1 + 2x)(3 + 4x) = 3 + 10x + 8x².
        assert_eq!(schoolbook_mul(&[1, 2], &[3, 4]), vec![3, 10, 8]);
        assert_eq!(schoolbook_mul(&[], &[1, 2]), Vec::<i64>::new());
        assert_eq!(schoolbook_mul(&[5], &[7]), vec![35]);
    }

    #[test]
    fn karatsuba_matches_schoolbook_small() {
        let a = vec![1, -2, 3, 4];
        let b = vec![-5, 6, 7];
        assert_eq!(karatsuba_mul_seq(&a, &b), schoolbook_mul(&a, &b));
    }

    #[test]
    fn karatsuba_matches_schoolbook_random() {
        let pool = PalPool::new(4).unwrap();
        for n in [1usize, 2, 7, 31, 64, 200, 513] {
            let a = random_poly(n, n as u64);
            let b = random_poly(n + 3, n as u64 + 1000);
            assert_eq!(
                karatsuba_mul(&pool, &a, &b),
                schoolbook_mul(&a, &b),
                "n = {n}"
            );
        }
    }

    #[test]
    fn unequal_lengths_and_zeros() {
        let a = vec![0, 0, 0, 1];
        let b = vec![1];
        assert_eq!(karatsuba_mul_seq(&a, &b), vec![0, 0, 0, 1]);
        let z = vec![0i64; 50];
        let r = random_poly(50, 9);
        assert_eq!(karatsuba_mul_seq(&z, &r), vec![0i64; 99]);
    }

    #[test]
    fn small_grain_forces_deep_recursion() {
        let a = random_poly(100, 1);
        let b = random_poly(100, 2);
        assert_eq!(
            karatsuba_mul_with_grain(&SeqExecutor, &a, &b, 1),
            schoolbook_mul(&a, &b)
        );
    }

    #[test]
    fn results_identical_for_any_p() {
        let a = random_poly(400, 21);
        let b = random_poly(300, 22);
        let expected = schoolbook_mul(&a, &b);
        for p in [1usize, 2, 3, 4, 8] {
            let pool = PalPool::new(p).unwrap();
            assert_eq!(karatsuba_mul(&pool, &a, &b), expected, "p = {p}");
        }
    }

    proptest! {
        #[test]
        fn prop_matches_schoolbook(
            a in proptest::collection::vec(-50i64..50, 1..120),
            b in proptest::collection::vec(-50i64..50, 1..120)
        ) {
            let pool = PalPool::new(2).unwrap();
            prop_assert_eq!(
                karatsuba_mul_with_grain(&pool, &a, &b, 4),
                schoolbook_mul(&a, &b)
            );
        }

        #[test]
        fn prop_multiplication_is_commutative(
            a in proptest::collection::vec(-50i64..50, 1..80),
            b in proptest::collection::vec(-50i64..50, 1..80)
        ) {
            prop_assert_eq!(karatsuba_mul_seq(&a, &b), karatsuba_mul_seq(&b, &a));
        }
    }
}
