//! Quicksort with pal-thread recursion.
//!
//! The two recursive calls after partitioning become pal-threads; the
//! partition itself (the `f(n) = Θ(n)` driving cost) stays sequential, so in
//! expectation the algorithm follows the case-2 recurrence
//! `T(n) = 2T(n/2) + n` and Theorem 1 promises `O(T(n)/p)`.

use lopram_core::Executor;

/// Size below which recursion switches to insertion sort.
pub const DEFAULT_GRAIN: usize = 64;

/// Sequential quicksort baseline.
pub fn quick_sort_seq<T: Ord + Copy>(data: &mut [T]) {
    if data.len() <= DEFAULT_GRAIN {
        insertion_sort(data);
        return;
    }
    let (lt, gt) = partition(data);
    let (left, rest) = data.split_at_mut(lt);
    quick_sort_seq(left);
    quick_sort_seq(&mut rest[gt - lt..]);
}

/// Pal-thread quicksort.
pub fn quick_sort<T, E>(exec: &E, data: &mut [T])
where
    T: Ord + Copy + Send + Sync,
    E: Executor,
{
    qsort(exec, data, DEFAULT_GRAIN);
}

/// Pal-thread quicksort with an explicit sequential-cutoff grain.
pub fn quick_sort_with_grain<T, E>(exec: &E, data: &mut [T], grain: usize)
where
    T: Ord + Copy + Send + Sync,
    E: Executor,
{
    qsort(exec, data, grain.max(2));
}

fn qsort<T, E>(exec: &E, data: &mut [T], grain: usize)
where
    T: Ord + Copy + Send + Sync,
    E: Executor,
{
    if data.len() <= grain {
        insertion_sort(data);
        return;
    }
    let (lt, gt) = partition(data);
    let (left, rest) = data.split_at_mut(lt);
    let right = &mut rest[gt - lt..];
    exec.join(|| qsort(exec, left, grain), || qsort(exec, right, grain));
}

/// Three-way (Dutch national flag) partition around a median-of-three pivot.
///
/// Returns `(lt, gt)` such that `data[..lt] < pivot`,
/// `data[lt..gt] == pivot` and `data[gt..] > pivot`.  Grouping the equal
/// elements keeps the recursion depth `O(log n)` in expectation even for
/// inputs with many duplicates.
fn partition<T: Ord + Copy>(data: &mut [T]) -> (usize, usize) {
    let len = data.len();
    let mid = len / 2;
    // Median-of-three pivot selection guards against sorted inputs.
    if data[0] > data[mid] {
        data.swap(0, mid);
    }
    if data[0] > data[len - 1] {
        data.swap(0, len - 1);
    }
    if data[mid] > data[len - 1] {
        data.swap(mid, len - 1);
    }
    let pivot = data[mid];
    let mut lt = 0usize;
    let mut i = 0usize;
    let mut gt = len;
    while i < gt {
        if data[i] < pivot {
            data.swap(i, lt);
            lt += 1;
            i += 1;
        } else if data[i] > pivot {
            gt -= 1;
            data.swap(i, gt);
        } else {
            i += 1;
        }
    }
    (lt, gt)
}

fn insertion_sort<T: Ord + Copy>(data: &mut [T]) {
    for i in 1..data.len() {
        let key = data[i];
        let mut j = i;
        while j > 0 && data[j - 1] > key {
            data[j] = data[j - 1];
            j -= 1;
        }
        data[j] = key;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lopram_core::{PalPool, SeqExecutor};
    use proptest::prelude::*;
    use rand::prelude::*;

    fn random_vec(n: usize, seed: u64) -> Vec<i64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| rng.gen_range(-1_000_000..1_000_000))
            .collect()
    }

    #[test]
    fn sequential_quicksort_sorts() {
        let mut v = random_vec(2000, 3);
        let mut expected = v.clone();
        expected.sort();
        quick_sort_seq(&mut v);
        assert_eq!(v, expected);
    }

    #[test]
    fn parallel_quicksort_matches_std_sort() {
        let pool = PalPool::new(4).unwrap();
        for n in [0usize, 1, 2, 63, 64, 65, 1000, 5000] {
            let mut v = random_vec(n, n as u64 + 17);
            let mut expected = v.clone();
            expected.sort();
            quick_sort(&pool, &mut v);
            assert_eq!(v, expected, "n = {n}");
        }
    }

    #[test]
    fn handles_adversarial_inputs() {
        let pool = PalPool::new(4).unwrap();
        let mut sorted: Vec<i64> = (0..4000).collect();
        let expected = sorted.clone();
        quick_sort(&pool, &mut sorted);
        assert_eq!(sorted, expected);

        let mut reversed: Vec<i64> = (0..4000).rev().collect();
        quick_sort(&pool, &mut reversed);
        assert_eq!(reversed, expected);

        let mut constant: Vec<i64> = vec![7; 4000];
        quick_sort(&pool, &mut constant);
        assert_eq!(constant, vec![7; 4000]);
    }

    #[test]
    fn partition_places_pivot_correctly() {
        let mut v = vec![5i64, 3, 8, 1, 9, 2, 7];
        let (lt, gt) = partition(&mut v);
        assert!(lt < gt, "the pivot class is never empty");
        let pivot = v[lt];
        assert!(v[..lt].iter().all(|&x| x < pivot));
        assert!(v[lt..gt].iter().all(|&x| x == pivot));
        assert!(v[gt..].iter().all(|&x| x > pivot));
    }

    #[test]
    fn partition_groups_duplicates() {
        let mut v = vec![4i64; 100];
        let (lt, gt) = partition(&mut v);
        assert_eq!((lt, gt), (0, 100));
        let mut mixed = vec![2i64, 9, 2, 2, 9, 2, 5, 5, 5];
        let (lt, gt) = partition(&mut mixed);
        assert!(mixed[lt..gt].windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn works_on_sequential_executor_with_small_grain() {
        let mut v = random_vec(777, 5);
        let mut expected = v.clone();
        expected.sort();
        quick_sort_with_grain(&SeqExecutor, &mut v, 4);
        assert_eq!(v, expected);
    }

    #[test]
    fn results_identical_for_any_p() {
        let reference = {
            let mut v = random_vec(3000, 11);
            v.sort();
            v
        };
        for p in [1usize, 2, 4, 6] {
            let pool = PalPool::new(p).unwrap();
            let mut v = random_vec(3000, 11);
            quick_sort(&pool, &mut v);
            assert_eq!(v, reference, "p = {p}");
        }
    }

    proptest! {
        #[test]
        fn prop_quicksort_sorts(mut v in proptest::collection::vec(-1000i64..1000, 0..600)) {
            let pool = PalPool::new(3).unwrap();
            let mut expected = v.clone();
            expected.sort();
            quick_sort_with_grain(&pool, &mut v, 8);
            prop_assert_eq!(v, expected);
        }
    }
}
