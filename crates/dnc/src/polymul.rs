//! Four-way divide-and-conquer polynomial multiplication.
//!
//! Splitting both operands in half and computing all four half-size products
//! gives `T(n) = 4T(n/2) + Θ(n)` — still Master case 1 (`n^{log₂4} = n²`
//! dominates the linear combine), so the pal-thread version is promised
//! `O(T(n)/p)`.  This is the "unoptimised" sibling of Karatsuba; the
//! experiment harness uses both to show that the speedup *shape* is the same
//! even though the sequential constants differ.

use lopram_core::Executor;

use crate::karatsuba::schoolbook_mul;

/// Sequential four-way polynomial multiplication.
pub fn polymul_seq(a: &[i64], b: &[i64]) -> Vec<i64> {
    polymul_four_way(&lopram_core::SeqExecutor, a, b)
}

/// Pal-thread four-way polynomial multiplication (all four sub-products are
/// pal-threads).
pub fn polymul_four_way<E: Executor>(exec: &E, a: &[i64], b: &[i64]) -> Vec<i64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    recurse(exec, a, b, 32)
}

/// Pal-thread four-way multiplication with an explicit base-case threshold.
pub fn polymul_with_grain<E: Executor>(exec: &E, a: &[i64], b: &[i64], grain: usize) -> Vec<i64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    recurse(exec, a, b, grain.max(1))
}

fn recurse<E: Executor>(exec: &E, a: &[i64], b: &[i64], grain: usize) -> Vec<i64> {
    let n = a.len().max(b.len());
    if n <= grain {
        return schoolbook_mul(a, b);
    }
    let half = n.div_ceil(2);
    let (a_lo, a_hi) = split(a, half);
    let (b_lo, b_hi) = split(b, half);

    // palthreads { ll; lh; hl; hh }
    let ((ll, lh), (hl, hh)) = exec.join(
        || {
            exec.join(
                || recurse(exec, a_lo, b_lo, grain),
                || recurse(exec, a_lo, b_hi, grain),
            )
        },
        || {
            exec.join(
                || recurse(exec, a_hi, b_lo, grain),
                || recurse(exec, a_hi, b_hi, grain),
            )
        },
    );

    let mut out = vec![0i64; a.len() + b.len() - 1];
    add_shifted(&mut out, &ll, 0);
    add_shifted(&mut out, &lh, half);
    add_shifted(&mut out, &hl, half);
    add_shifted(&mut out, &hh, 2 * half);
    out
}

fn split(poly: &[i64], half: usize) -> (&[i64], &[i64]) {
    if poly.len() <= half {
        (poly, &[])
    } else {
        poly.split_at(half)
    }
}

fn add_shifted(out: &mut [i64], poly: &[i64], shift: usize) {
    for (i, &v) in poly.iter().enumerate() {
        if v != 0 {
            out[i + shift] += v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::karatsuba::karatsuba_mul_seq;
    use lopram_core::PalPool;
    use proptest::prelude::*;
    use rand::prelude::*;

    fn random_poly(n: usize, seed: u64) -> Vec<i64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(-100..100)).collect()
    }

    #[test]
    fn matches_schoolbook() {
        let pool = PalPool::new(4).unwrap();
        for n in [1usize, 3, 16, 100, 257] {
            let a = random_poly(n, n as u64);
            let b = random_poly(n + 5, n as u64 + 7);
            assert_eq!(
                polymul_four_way(&pool, &a, &b),
                schoolbook_mul(&a, &b),
                "n = {n}"
            );
        }
    }

    #[test]
    fn matches_karatsuba() {
        let a = random_poly(150, 1);
        let b = random_poly(150, 2);
        assert_eq!(polymul_seq(&a, &b), karatsuba_mul_seq(&a, &b));
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(polymul_seq(&[], &[1, 2]), Vec::<i64>::new());
        assert_eq!(polymul_seq(&[1, 2], &[]), Vec::<i64>::new());
    }

    #[test]
    fn results_identical_for_any_p() {
        let a = random_poly(300, 31);
        let b = random_poly(200, 32);
        let expected = schoolbook_mul(&a, &b);
        for p in [1usize, 2, 4, 8] {
            let pool = PalPool::new(p).unwrap();
            assert_eq!(polymul_four_way(&pool, &a, &b), expected, "p = {p}");
        }
    }

    proptest! {
        #[test]
        fn prop_matches_schoolbook(
            a in proptest::collection::vec(-40i64..40, 1..100),
            b in proptest::collection::vec(-40i64..40, 1..100)
        ) {
            let pool = PalPool::new(2).unwrap();
            prop_assert_eq!(polymul_with_grain(&pool, &a, &b, 4), schoolbook_mul(&a, &b));
        }
    }
}
