//! A Master-theorem case-3 workload: dominant merge cost.
//!
//! The recursion computes `Σ_{i<j} a_i · a_j` (the sum of products over all
//! unordered pairs) the divide-and-conquer way: solve both halves, then merge
//! by *explicitly* accumulating every cross pair — `Θ(n²)` merge work, so
//! `T(n) = 2T(n/2) + Θ(n²)` and the root merge dominates (case 3).
//!
//! * With a **sequential merge** Theorem 1 predicts `T_p(n) = Θ(f(n))`: extra
//!   processors buy nothing.
//! * With a **parallel merge** ([`CrossMergeMode::Parallel`]) the cross
//!   accumulation is spread over the processors and Eq. 5 predicts
//!   `Θ(f(n)/p)` — linear speedup again.
//!
//! The algebraic identity `Σ_{i<j} a_i a_j = (S² − Σ a_i²)/2` provides an
//! `O(n)` oracle for the tests, so the expensive path is verifiable.

use lopram_core::Executor;

/// How the cross-pair merge is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrossMergeMode {
    /// The parent accumulates all cross pairs itself (Theorem 1, case 3).
    Sequential,
    /// The cross pairs are accumulated by pal-threads over index chunks
    /// (the Eq. 5 refinement).
    Parallel,
}

/// Result of the cross-product-sum computation on one segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrossResult {
    /// `Σ_{i<j} a_i · a_j` within the segment.
    pub pair_sum: i128,
    /// `Σ a_i` of the segment (needed by the parent's merge).
    pub total: i128,
}

/// Closed-form oracle: `Σ_{i<j} a_i a_j = (S² − Σ a_i²) / 2`.
pub fn pair_sum_oracle(values: &[i64]) -> i128 {
    let s: i128 = values.iter().map(|&v| v as i128).sum();
    let sq: i128 = values.iter().map(|&v| (v as i128) * (v as i128)).sum();
    (s * s - sq) / 2
}

/// Sequential divide-and-conquer cross-product sum (case 3 baseline).
pub fn cross_product_sum_seq(values: &[i64]) -> i128 {
    cross_product_sum(
        &lopram_core::SeqExecutor,
        values,
        CrossMergeMode::Sequential,
    )
}

/// Pal-thread cross-product sum with the chosen merge mode.
pub fn cross_product_sum<E: Executor>(exec: &E, values: &[i64], mode: CrossMergeMode) -> i128 {
    recurse(exec, values, mode, 32).pair_sum
}

fn recurse<E: Executor>(
    exec: &E,
    values: &[i64],
    mode: CrossMergeMode,
    grain: usize,
) -> CrossResult {
    if values.len() <= grain {
        let mut pair_sum = 0i128;
        for i in 0..values.len() {
            for j in i + 1..values.len() {
                pair_sum += values[i] as i128 * values[j] as i128;
            }
        }
        return CrossResult {
            pair_sum,
            total: values.iter().map(|&v| v as i128).sum(),
        };
    }
    let mid = values.len() / 2;
    let (left, right) = values.split_at(mid);
    let (l, r) = exec.join(
        || recurse(exec, left, mode, grain),
        || recurse(exec, right, mode, grain),
    );
    // The deliberately quadratic merge: accumulate every cross pair.
    let cross = match mode {
        CrossMergeMode::Sequential => cross_pairs_sequential(left, right),
        CrossMergeMode::Parallel => cross_pairs_parallel(exec, left, right),
    };
    CrossResult {
        pair_sum: l.pair_sum + r.pair_sum + cross,
        total: l.total + r.total,
    }
}

fn cross_pairs_sequential(left: &[i64], right: &[i64]) -> i128 {
    let mut acc = 0i128;
    for &x in left {
        let x = x as i128;
        for &y in right {
            acc += x * y as i128;
        }
    }
    acc
}

fn cross_pairs_parallel<E: Executor>(exec: &E, left: &[i64], right: &[i64]) -> i128 {
    // One row of the cross product per index; the per-row partial sum is
    // folded into a shared accumulator.  The lock is taken once per row, so
    // its cost is negligible next to the Θ(|right|) inner loop.
    let acc = parking_lot::Mutex::new(0i128);
    exec.for_each_index(0..left.len(), |i| {
        let x = left[i] as i128;
        let mut local = 0i128;
        for &y in right {
            local += x * y as i128;
        }
        *acc.lock() += local;
    });
    acc.into_inner()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lopram_core::{PalPool, SeqExecutor};
    use proptest::prelude::*;
    use rand::prelude::*;

    fn random_vec(n: usize, seed: u64) -> Vec<i64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(-1000..1000)).collect()
    }

    #[test]
    fn oracle_on_small_cases() {
        assert_eq!(pair_sum_oracle(&[]), 0);
        assert_eq!(pair_sum_oracle(&[5]), 0);
        assert_eq!(pair_sum_oracle(&[2, 3]), 6);
        assert_eq!(pair_sum_oracle(&[1, 2, 3]), 2 + 3 + 6);
    }

    #[test]
    fn sequential_matches_oracle() {
        for n in [0usize, 1, 2, 33, 100, 1000] {
            let v = random_vec(n, n as u64);
            assert_eq!(cross_product_sum_seq(&v), pair_sum_oracle(&v), "n = {n}");
        }
    }

    #[test]
    fn parallel_sequential_merge_matches_oracle() {
        let pool = PalPool::new(4).unwrap();
        let v = random_vec(2000, 9);
        assert_eq!(
            cross_product_sum(&pool, &v, CrossMergeMode::Sequential),
            pair_sum_oracle(&v)
        );
    }

    #[test]
    fn parallel_merge_matches_oracle() {
        let pool = PalPool::new(4).unwrap();
        let v = random_vec(2000, 10);
        assert_eq!(
            cross_product_sum(&pool, &v, CrossMergeMode::Parallel),
            pair_sum_oracle(&v)
        );
    }

    #[test]
    fn both_merge_modes_agree() {
        let pool = PalPool::new(3).unwrap();
        let v = random_vec(1500, 11);
        let seq_merge = cross_product_sum(&pool, &v, CrossMergeMode::Sequential);
        let par_merge = cross_product_sum(&pool, &v, CrossMergeMode::Parallel);
        assert_eq!(seq_merge, par_merge);
    }

    #[test]
    fn results_identical_for_any_p() {
        let v = random_vec(1200, 12);
        let expected = pair_sum_oracle(&v);
        for p in [1usize, 2, 4, 8] {
            let pool = PalPool::new(p).unwrap();
            for mode in [CrossMergeMode::Sequential, CrossMergeMode::Parallel] {
                assert_eq!(
                    cross_product_sum(&pool, &v, mode),
                    expected,
                    "p = {p}, mode = {mode:?}"
                );
            }
        }
    }

    #[test]
    fn negative_values_and_duplicates() {
        let v = vec![-5i64; 100];
        assert_eq!(cross_product_sum_seq(&v), pair_sum_oracle(&v));
        assert_eq!(
            cross_product_sum(&SeqExecutor, &v, CrossMergeMode::Parallel),
            pair_sum_oracle(&v)
        );
    }

    proptest! {
        #[test]
        fn prop_matches_oracle(v in proptest::collection::vec(-500i64..500, 0..300)) {
            let pool = PalPool::new(2).unwrap();
            prop_assert_eq!(
                cross_product_sum(&pool, &v, CrossMergeMode::Sequential),
                pair_sum_oracle(&v)
            );
            prop_assert_eq!(
                cross_product_sum(&pool, &v, CrossMergeMode::Parallel),
                pair_sum_oracle(&v)
            );
        }
    }
}
