//! Minimal, API-compatible shim for the subset of [`proptest`] this workspace
//! uses: the [`proptest!`] macro with `pat in strategy` bindings, range and
//! tuple strategies, [`collection::vec`], [`ProptestConfig::with_cases`] and
//! the `prop_assert*` macros.
//!
//! The build container has no network access, so the real crate cannot be
//! fetched.  This shim runs each property as a plain `#[test]` over
//! `config.cases` deterministically seeded random inputs.  Failures panic
//! with the failing assertion like a normal test; there is no shrinking,
//! persistence or failure-case replay — swap in the real crate for those.
//!
//! [`proptest`]: https://docs.rs/proptest

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::ops::Range;

use rand::prelude::*;

/// Configuration for a property block — the shim of
/// `proptest::test_runner::Config` under its conventional alias.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate's default.
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The deterministic generator driving a property run.
#[derive(Debug)]
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// Seed a generator from the property's name, so every property gets a
    /// distinct but reproducible input stream.
    pub fn deterministic(name: &str) -> Self {
        let mut hasher = DefaultHasher::new();
        name.hash(&mut hasher);
        TestRng {
            rng: StdRng::seed_from_u64(hasher.finish()),
        }
    }
}

/// A source of random values — the shim of `proptest::strategy::Strategy`.
///
/// Unlike the real trait this samples values directly (no value trees, no
/// shrinking).
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Collection strategies — the shim of `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng as _;
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and a length drawn from
    /// a range; the shim of `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.start < self.size.end {
                rng.rng.gen_range(self.size.clone())
            } else {
                self.size.start
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Define property tests — the shim of `proptest::proptest!`.
///
/// Each `#[test] fn name(pat in strategy, ..) { .. }` item becomes a plain
/// test that checks the body against `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($items:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($items)* }
    };
    ($($items:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($items)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        #[test]
        fn $name:ident ( $( $arg:pat in $strategy:expr ),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for _ in 0..config.cases {
                $( let $arg = $crate::Strategy::sample(&($strategy), &mut rng); )+
                $body
            }
        }
    )*};
}

/// Assert a condition inside a property — the shim of
/// `proptest::prop_assert!` (fails the test by panicking; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property — the shim of
/// `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a property — the shim of
/// `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn vec_strategy_respects_bounds() {
        let mut rng = crate::TestRng::deterministic("vec_strategy_respects_bounds");
        let strategy = collection::vec(-5i64..5, 2..10);
        for _ in 0..200 {
            let v = Strategy::sample(&strategy, &mut rng);
            assert!((2..10).contains(&v.len()));
            assert!(v.iter().all(|x| (-5..5).contains(x)));
        }
    }

    #[test]
    fn tuple_strategy_samples_componentwise() {
        let mut rng = crate::TestRng::deterministic("tuple_strategy");
        let strategy = (0usize..4, 10u64..20, -1.0f64..1.0);
        for _ in 0..200 {
            let (a, b, c) = Strategy::sample(&strategy, &mut rng);
            assert!(a < 4);
            assert!((10..20).contains(&b));
            assert!((-1.0..1.0).contains(&c));
        }
    }

    #[test]
    fn same_property_name_resamples_identically() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        let s = 0u64..1000;
        for _ in 0..50 {
            assert_eq!(Strategy::sample(&s, &mut a), Strategy::sample(&s, &mut b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_generates_working_tests(v in collection::vec(0i64..100, 0..50), k in 1usize..4) {
            prop_assert!(v.len() < 50);
            prop_assert_eq!(k.min(3), k);
            prop_assert_ne!(k, 0);
        }
    }
}
