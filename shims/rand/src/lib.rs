//! Minimal, API-compatible shim for the subset of [`rand`] 0.8 this workspace
//! uses: `StdRng::seed_from_u64(..)` plus `Rng::gen_range(..)` over integer
//! and float `Range`s.
//!
//! The build container has no network access, so the real crate cannot be
//! fetched.  [`StdRng`] here is a SplitMix64 generator — deterministic for a
//! given seed (which is all the workloads need: the workspace only draws
//! reproducible test/bench inputs from it), but **not** the same stream as
//! the real crate's `StdRng` and not cryptographically secure.
//!
//! [`rand`]: https://docs.rs/rand

use std::ops::Range;

/// A deterministic pseudo-random generator seedable from a `u64`, mirroring
/// the `rand::SeedableRng` entry point the workspace uses.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value uniformly from `range` (`start..end`, `start < end`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

/// The default seedable generator (SplitMix64; see the crate docs for how it
/// differs from the real crate's `StdRng`).
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Vigna): passes BigCrush, one add + two xor-shifts.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A range from which a value can be drawn uniformly, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draw one value from the range using `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // 53 uniform mantissa bits in [0, 1), divided in f64 so the
                // quotient cannot round up to 1.0 even for the f32 target.
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let value = self.start + (unit as $t) * (self.end - self.start);
                // `start + unit * span` can still round up onto `end`; keep
                // the documented half-open contract.
                if value < self.end {
                    value
                } else {
                    <$t>::max(self.start, self.end.next_down())
                }
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Commonly used items, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::{Rng, RngCore, SampleRange, SeedableRng, StdRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: i64 = rng.gen_range(-1000..1000);
            assert!((-1000..1000).contains(&v));
            let u: u8 = rng.gen_range(0..4);
            assert!(u < 4);
            let w: usize = rng.gen_range(0..17);
            assert!(w < 17);
        }
    }

    #[test]
    fn int_range_covers_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 4 buckets hit: {seen:?}");
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&v));
        }
    }

    #[test]
    fn float_range_excludes_upper_bound_even_at_generator_extremes() {
        // A generator pinned at u64::MAX maximises `unit`; the sampled value
        // must still respect the half-open [start, end) contract.
        struct MaxRng;
        impl crate::RngCore for MaxRng {
            fn next_u64(&mut self) -> u64 {
                u64::MAX
            }
        }
        let f: f32 = crate::SampleRange::sample_single(0.0f32..1.0f32, &mut MaxRng);
        assert!((0.0..1.0).contains(&f), "f32 sample {f} escaped the range");
        let d: f64 = crate::SampleRange::sample_single(-2.0f64..3.0f64, &mut MaxRng);
        assert!((-2.0..3.0).contains(&d), "f64 sample {d} escaped the range");
    }

    #[test]
    fn full_i64_range_does_not_overflow() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..100 {
            let _: i64 = rng.gen_range(i64::MIN..i64::MAX);
        }
    }
}
