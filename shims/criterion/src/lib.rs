//! Minimal, API-compatible shim for the subset of [`criterion`] this
//! workspace uses: [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`],
//! [`Bencher`] and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! The build container has no network access, so the real crate cannot be
//! fetched.  This shim keeps the bench targets compiling and runnable: each
//! benchmark is warmed up once and then timed for `sample_size` samples, and
//! the per-iteration median is printed.  There is no statistical analysis,
//! HTML report or saved baseline — swap in the real crate for those.
//!
//! [`criterion`]: https://docs.rs/criterion

use std::fmt;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation; re-export
/// style shim of `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The benchmark driver — the shim of `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // The real crate defaults to 100 samples; that is far too slow
        // without its adaptive plan, so the shim defaults lower.  Benches in
        // this workspace set `sample_size` explicitly anyway.
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 1, "sample size must be at least 1");
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility; this shim parses no CLI arguments.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Accepted for API compatibility; results are printed as benches run.
    pub fn final_summary(&self) {}

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into();
        run_benchmark(&label, self.sample_size, f);
    }
}

/// A group of related benchmarks — the shim of `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Run a benchmark labelled `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_benchmark(&label, self.criterion.sample_size, &mut f);
    }

    /// Run a benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.criterion.sample_size, |b| f(b, input));
    }

    /// Finish the group (printing happens as benches run in this shim).
    pub fn finish(self) {}
}

/// A function-plus-parameter benchmark label — the shim of
/// `criterion::BenchmarkId`.
pub struct BenchmarkId {
    function_name: String,
    parameter: String,
}

impl BenchmarkId {
    /// Identify a benchmark by function name and input parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function_name: function_name.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function_name, self.parameter)
    }
}

/// Timer handle passed to benchmark closures — the shim of
/// `criterion::Bencher`.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `sample_size` executions of `routine` (after one warm-up run).
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        std::hint::black_box(routine()); // warm-up
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F>(label: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut bencher);
    let mut samples = bencher.samples;
    if samples.is_empty() {
        println!("{label:<50} (no samples — closure never called iter)");
        return;
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let max = samples[samples.len() - 1];
    println!(
        "{label:<50} median {median:>12.3?}   min {min:>12.3?}   max {max:>12.3?}   ({} samples)",
        samples.len()
    );
}

/// Bundle benchmark functions into a runnable group — the shim of
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate a `main` that runs the given groups — the shim of
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_the_closure() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
                std::hint::black_box((0..100u64).sum::<u64>())
            });
        });
        // One warm-up + three samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn group_and_id_labels_compose() {
        let id = BenchmarkId::new("mergesort", 4);
        assert_eq!(id.to_string(), "mergesort/4");
        let mut c = Criterion::default().sample_size(1);
        let mut group = c.benchmark_group("case2");
        let mut ran = false;
        group.bench_with_input(BenchmarkId::new("f", 8), &8usize, |b, &p| {
            b.iter(|| std::hint::black_box(p * 2));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
