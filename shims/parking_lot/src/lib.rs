//! Minimal, API-compatible shim for the subset of [`parking_lot`] this
//! workspace uses: [`Mutex`], [`MutexGuard`] and [`Condvar`].
//!
//! The build container has no network access, so the real crate cannot be
//! fetched; this shim wraps `std::sync` primitives behind parking_lot's
//! signatures.  The two semantic properties the workspace relies on are
//! preserved:
//!
//! * `lock()` returns the guard directly (no `Result`) — poisoning is
//!   swallowed, as parking_lot has no lock poisoning;
//! * `Condvar::wait` takes `&mut MutexGuard` and re-acquires the lock before
//!   returning.
//!
//! Divergence from the real crate: `Condvar::notify_one`/`notify_all` return
//! `()` instead of the number of woken threads (std cannot report it).
//!
//! [`parking_lot`]: https://docs.rs/parking_lot

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual exclusion primitive, mirroring `parking_lot::Mutex`.
///
/// Unlike `std::sync::Mutex`, locking never returns a poison error: a
/// panicked holder simply releases the lock.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex and return the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self
            .inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner);
        MutexGuard { inner: Some(guard) }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutably access the inner value without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The inner std guard lives in an `Option` so [`Condvar::wait`] can move it
/// out while the thread is parked and put the re-acquired guard back.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_deref_mut()
            .expect("guard present outside wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A condition variable, mirroring `parking_lot::Condvar`.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically release the lock behind `guard` and block until notified;
    /// the lock is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present outside wait");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(sync::PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    /// Atomically release the lock behind `guard` and block until notified
    /// or until `timeout` elapsed; the lock is re-acquired before
    /// returning.  The result reports whether the wait timed out (which,
    /// as with the real crate, says nothing about the condition itself —
    /// re-check it either way).
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard present outside wait");
        let (std_guard, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(sync::PoisonError::into_inner);
        guard.inner = Some(std_guard);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wake one thread blocked on this condition variable.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every thread blocked on this condition variable.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

/// Result of [`Condvar::wait_for`], mirroring
/// `parking_lot::WaitTimeoutResult`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// `true` when the wait ended because the timeout elapsed rather than
    /// a notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn lock_survives_panicked_holder() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        // parking_lot semantics: the lock is usable after a panicked holder.
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn condvar_wait_wakes_on_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            *ready
        });
        thread::sleep(Duration::from_millis(10));
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_all();
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn condvar_wait_for_times_out_and_reacquires() {
        let pair = (Mutex::new(0u32), Condvar::new());
        let (lock, cv) = &pair;
        let mut guard = lock.lock();
        let result = cv.wait_for(&mut guard, Duration::from_millis(5));
        assert!(result.timed_out());
        // The lock was re-acquired: the guard is usable.
        *guard += 1;
        assert_eq!(*guard, 1);
    }

    #[test]
    fn condvar_wait_for_wakes_on_notify_before_timeout() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                if cv.wait_for(&mut ready, Duration::from_secs(10)).timed_out() {
                    return false;
                }
            }
            true
        });
        thread::sleep(Duration::from_millis(10));
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_all();
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn try_lock_contended_returns_none() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
