//! A lock-free Chase–Lev work-stealing deque on std atomics only.
//!
//! This is the pending-pal-thread container of the runtime: one deque per
//! worker, owner pushes and pops at the *bottom* (newest end, the LIFO
//! fork/join fast path), thieves take from the *top* (oldest end), which is
//! exactly the LoPRAM §3.1 rule that pending pal-threads are activated "in a
//! manner consistent with order of creation as resources become available".
//! The build container has no network, so this is implemented from scratch
//! (no `crossbeam-deque`), following the algorithm of Chase & Lev, *Dynamic
//! circular work-stealing deque* (SPAA 2005), with the explicit
//! weak-memory orderings of Lê, Pop, Cohen & Zappa Nardelli, *Correct and
//! efficient work-stealing for weak memory models* (PPoPP 2013).
//!
//! # Memory-ordering argument
//!
//! * **`push`** writes the element into the buffer and then publishes it
//!   with a `Release` store to `bottom`.  A thief that observes the new
//!   `bottom` via its `Acquire` load therefore also observes the element
//!   write (release/acquire pairing on `bottom`).
//! * **`steal`** loads `top` (`Acquire`), issues a `SeqCst` fence, loads
//!   `bottom`, reads the element at `top`, and only then claims it with a
//!   `SeqCst` compare-exchange on `top`.  The claim is the linearization
//!   point: exactly one thief (or the owner racing on the last element) can
//!   move `top` from `t` to `t + 1`, so every element is handed out at most
//!   once.
//! * **`pop`** first *reserves* the bottom element by decrementing `bottom`,
//!   then issues a `SeqCst` fence before reading `top`.  The matching
//!   `SeqCst` fence in `steal` (between its `top` and `bottom` loads) makes
//!   this a Dekker-style handshake: either the thief sees the decremented
//!   `bottom` (and gives up on the last element), or the owner sees the
//!   incremented `top` (and races for it with a `SeqCst` CAS).  Without the
//!   two fences both sides could read stale values and hand the same element
//!   out twice.
//! * **Growth** allocates a buffer of twice the capacity, copies the live
//!   range `top..bottom`, and publishes it with a `Release` store.  The old
//!   buffer is *retired*, not freed: a concurrent thief may still hold the
//!   old pointer and read an element from it.  That stale read is harmless —
//!   the bytes at indices `< top` are never overwritten in a retired buffer,
//!   and the thief's subsequent CAS on `top` decides whether its copy is the
//!   authoritative one.  Retired buffers are freed when the deque is
//!   dropped.
//!
//! A value read by a thief that then *loses* the CAS race is [`mem::forget`]
//! ten: ownership stays with whoever wins the race for that index, so no
//! value is ever dropped twice (and none of the runtime's job types have
//! drop glue in the first place).

use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::mem::{self, MaybeUninit};
use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, Ordering};
use std::sync::{Arc, Mutex};

/// Initial buffer capacity (elements); must be a power of two.
const MIN_CAP: usize = 32;

/// A fixed-capacity circular buffer.  Never accessed mutably once shared;
/// all element slots are `UnsafeCell`s written by the owner only.
struct Buffer<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: isize,
}

impl<T> Buffer<T> {
    fn new(cap: usize) -> Box<Self> {
        debug_assert!(cap.is_power_of_two());
        let slots = (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Box::new(Buffer {
            slots,
            mask: cap as isize - 1,
        })
    }

    fn cap(&self) -> usize {
        self.slots.len()
    }

    /// Write the slot for logical index `i`.
    ///
    /// # Safety
    /// Owner-only, and `i` must be outside the range any other thread may
    /// concurrently read (i.e. `i == bottom` during `push`, or the copy
    /// target of a growth).
    unsafe fn write(&self, i: isize, value: T) {
        (*self.slots[(i & self.mask) as usize].get()).write(value);
    }

    /// Read (bitwise copy) the slot for logical index `i`.
    ///
    /// # Safety
    /// `i` must have been initialized by a `write` that happens-before this
    /// read.  The caller must ensure at most one reader keeps the value
    /// (CAS on `top`, or owner exclusivity at `bottom`); a losing racer must
    /// `mem::forget` its copy.
    unsafe fn read(&self, i: isize) -> T {
        (*self.slots[(i & self.mask) as usize].get()).assume_init_read()
    }
}

struct Inner<T> {
    /// Oldest live index; thieves advance it with a CAS.
    top: AtomicIsize,
    /// One past the newest live index; owner-only writes.
    bottom: AtomicIsize,
    /// Current buffer (owned raw pointer; retired buffers keep old ones
    /// alive for in-flight thieves).
    buffer: AtomicPtr<Buffer<T>>,
    /// Buffers replaced by growth, freed on drop.  Mutex is fine: growth is
    /// rare (amortized) and owner-only; thieves never touch this.
    retired: Mutex<Vec<*mut Buffer<T>>>,
}

// SAFETY: the deque hands each element to exactly one taker (see module
// docs); raw buffer pointers are managed solely by the owner + drop.
#[allow(unsafe_code)]
unsafe impl<T: Send> Send for Inner<T> {}
#[allow(unsafe_code)]
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Exclusive access: drop live elements, then all buffers.
        let top = self.top.load(Ordering::Relaxed);
        let bottom = self.bottom.load(Ordering::Relaxed);
        let buf = self.buffer.load(Ordering::Relaxed);
        #[allow(unsafe_code)]
        unsafe {
            for i in top..bottom {
                drop((*buf).read(i));
            }
            drop(Box::from_raw(buf));
        }
        for old in self
            .retired
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .drain(..)
        {
            // Retired buffers hold only stale bitwise copies; the live
            // elements were moved to the current buffer, so free the
            // allocation without dropping slots.
            #[allow(unsafe_code)]
            unsafe {
                drop(Box::from_raw(old));
            }
        }
    }
}

/// Create a new empty deque, returning its owner and thief handles.
pub fn deque<T: Send>() -> (Worker<T>, Stealer<T>) {
    let inner = Arc::new(Inner {
        top: AtomicIsize::new(0),
        bottom: AtomicIsize::new(0),
        buffer: AtomicPtr::new(Box::into_raw(Buffer::new(MIN_CAP))),
        retired: Mutex::new(Vec::new()),
    });
    (
        Worker {
            inner: Arc::clone(&inner),
            _not_sync: PhantomData,
        },
        Stealer { inner },
    )
}

/// The owner end of a Chase–Lev deque: LIFO `push`/`pop` at the bottom.
///
/// There is exactly one `Worker` per deque and it is not `Sync`: `push` and
/// `pop` must stay on one thread at a time (the worker thread the runtime
/// pins it to).
pub struct Worker<T> {
    inner: Arc<Inner<T>>,
    /// Opt out of `Sync`: owner operations are single-threaded.
    _not_sync: PhantomData<*mut ()>,
}

// SAFETY: a Worker may be moved to another thread (that is how the runtime
// hands each spawned worker thread its deque); it just cannot be *shared*.
#[allow(unsafe_code)]
unsafe impl<T: Send> Send for Worker<T> {}

impl<T: Send> Worker<T> {
    /// Push `value` onto the bottom (newest end).  Grows the buffer when
    /// full; never blocks thieves.
    pub fn push(&self, value: T) {
        let inner = &*self.inner;
        let b = inner.bottom.load(Ordering::Relaxed);
        let t = inner.top.load(Ordering::Acquire);
        let mut buf = inner.buffer.load(Ordering::Relaxed);
        #[allow(unsafe_code)]
        unsafe {
            if b - t >= (*buf).cap() as isize {
                buf = self.grow(b, t, buf);
            }
            (*buf).write(b, value);
        }
        // Publish: pairs with the Acquire load of `bottom` in `steal`.
        inner.bottom.store(b + 1, Ordering::Release);
    }

    /// Pop from the bottom (newest end) — the fork/join fast path.
    pub fn pop(&self) -> Option<T> {
        let inner = &*self.inner;
        let b = inner.bottom.load(Ordering::Relaxed) - 1;
        let buf = inner.buffer.load(Ordering::Relaxed);
        // Reserve the bottom element before looking at `top` …
        inner.bottom.store(b, Ordering::Relaxed);
        // … with a full fence so a concurrent thief either sees the
        // reservation or we see its claimed `top` (Dekker handshake with the
        // fence in `steal`).
        fence(Ordering::SeqCst);
        let t = inner.top.load(Ordering::Relaxed);
        if t <= b {
            if t == b {
                // Single element left: race thieves for it on `top`.
                let won = inner
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                inner.bottom.store(b + 1, Ordering::Relaxed);
                if won {
                    #[allow(unsafe_code)]
                    return Some(unsafe { (*buf).read(b) });
                }
                None
            } else {
                // More than one element: the reservation alone is enough.
                #[allow(unsafe_code)]
                Some(unsafe { (*buf).read(b) })
            }
        } else {
            // Deque was empty; undo the reservation.
            inner.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// `true` when no element is currently visible (owner's view).
    pub fn is_empty(&self) -> bool {
        let b = self.inner.bottom.load(Ordering::Relaxed);
        let t = self.inner.top.load(Ordering::Relaxed);
        b <= t
    }

    /// A new thief handle for this deque.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Replace the full buffer with one of twice the capacity, copying the
    /// live range `t..b`.  Returns the new buffer pointer.
    ///
    /// # Safety
    /// Owner-only (single grower), `old` is the current buffer.
    #[allow(unsafe_code)]
    unsafe fn grow(&self, b: isize, t: isize, old: *mut Buffer<T>) -> *mut Buffer<T> {
        let new = Box::into_raw(Buffer::<T>::new((*old).cap() * 2));
        for i in t..b {
            // Bitwise copy: the old buffer keeps stale bytes that in-flight
            // thieves may still read; ownership is decided by `top` CASes.
            let v = (*old).read(i);
            (*new).write(i, v);
        }
        // Publish the new buffer before the `bottom` store that publishes
        // any element written into it.
        self.inner.buffer.store(new, Ordering::Release);
        self.inner
            .retired
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(old);
        new
    }
}

impl<T> std::fmt::Debug for Worker<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Worker").finish_non_exhaustive()
    }
}

/// The thief end of a Chase–Lev deque: FIFO `steal` from the top (oldest
/// end — §3.1 creation order).  Cloneable and shareable across threads.
pub struct Stealer<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// Outcome of one [`Stealer::steal`] attempt.
#[derive(Debug)]
pub enum Steal<T> {
    /// No element was visible.
    Empty,
    /// Lost a race (another thief or the owner claimed the element first);
    /// worth retrying immediately.
    Retry,
    /// Stole the oldest element.
    Success(T),
}

impl<T: Send> Stealer<T> {
    /// Try to steal the oldest element.
    pub fn steal(&self) -> Steal<T> {
        let inner = &*self.inner;
        let t = inner.top.load(Ordering::Acquire);
        // Pairs with the fence in `pop`: see module docs.
        fence(Ordering::SeqCst);
        let b = inner.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        // Read the candidate *before* claiming it — after a successful CAS
        // the owner may reuse the slot.
        let buf = inner.buffer.load(Ordering::Acquire);
        #[allow(unsafe_code)]
        let value = unsafe { (*buf).read(t) };
        if inner
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
        {
            Steal::Success(value)
        } else {
            // Someone else owns index `t`; our bitwise copy must not drop.
            mem::forget(value);
            Steal::Retry
        }
    }

    /// `true` when no element is currently visible (racy snapshot).
    pub fn is_empty(&self) -> bool {
        let t = self.inner.top.load(Ordering::Acquire);
        let b = self.inner.bottom.load(Ordering::Acquire);
        b <= t
    }
}

impl<T> std::fmt::Debug for Stealer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stealer").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicBool, AtomicUsize};
    use std::thread;

    fn repeat(default: usize) -> usize {
        std::env::var("LOPRAM_TEST_REPEAT")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    #[test]
    fn single_owner_push_pop_is_lifo() {
        let (w, _s) = deque::<u32>();
        assert!(w.pop().is_none());
        for i in 0..10 {
            w.push(i);
        }
        for i in (0..10).rev() {
            assert_eq!(w.pop(), Some(i));
        }
        assert!(w.pop().is_none());
        assert!(w.is_empty());
    }

    #[test]
    fn steal_takes_oldest_first() {
        let (w, s) = deque::<u32>();
        for i in 0..5 {
            w.push(i);
        }
        // Thieves drain in creation (FIFO) order — the §3.1 activation rule.
        for i in 0..5 {
            match s.steal() {
                Steal::Success(v) => assert_eq!(v, i),
                other => panic!("expected Success({i}), got {other:?}"),
            }
        }
        assert!(matches!(s.steal(), Steal::Empty));
    }

    #[test]
    fn buffer_grows_past_initial_capacity() {
        let (w, s) = deque::<usize>();
        let n = MIN_CAP * 8 + 3;
        for i in 0..n {
            w.push(i);
        }
        // Steal a few from the old range, pop the rest: every element comes
        // back exactly once even though the buffer grew several times.
        let mut seen = HashSet::new();
        for _ in 0..5 {
            if let Steal::Success(v) = s.steal() {
                assert!(seen.insert(v));
            }
        }
        while let Some(v) = w.pop() {
            assert!(seen.insert(v));
        }
        assert_eq!(seen.len(), n);
    }

    #[test]
    fn interleaved_push_pop_across_growth() {
        let (w, _s) = deque::<usize>();
        // Saw-tooth pattern that repeatedly crosses the growth boundary.
        let mut next = 0usize;
        for round in 0..6 {
            for _ in 0..MIN_CAP + round {
                w.push(next);
                next += 1;
            }
            for _ in 0..MIN_CAP / 2 {
                assert!(w.pop().is_some());
            }
        }
        while w.pop().is_some() {}
        assert!(w.is_empty());
    }

    /// Concurrent steal linearization: with several thieves racing the
    /// owner, every pushed value is taken exactly once — no loss, no
    /// duplication.  Loops under `LOPRAM_TEST_REPEAT` like the runtime
    /// stress suite.
    #[test]
    fn concurrent_steals_take_each_element_exactly_once() {
        const THIEVES: usize = 3;
        for round in 0..repeat(20) {
            let (w, s) = deque::<usize>();
            let n = 500;
            let done = AtomicBool::new(false);
            let stolen_count = AtomicUsize::new(0);
            let mut all: Vec<Vec<usize>> = Vec::new();

            thread::scope(|scope| {
                let mut handles = Vec::new();
                for _ in 0..THIEVES {
                    let s = s.clone();
                    let done = &done;
                    let stolen_count = &stolen_count;
                    handles.push(scope.spawn(move || {
                        let mut mine = Vec::new();
                        loop {
                            match s.steal() {
                                Steal::Success(v) => {
                                    mine.push(v);
                                    stolen_count.fetch_add(1, Ordering::Relaxed);
                                }
                                Steal::Retry => {}
                                Steal::Empty => {
                                    if done.load(Ordering::Acquire) && s.is_empty() {
                                        break;
                                    }
                                    thread::yield_now();
                                }
                            }
                        }
                        mine
                    }));
                }

                // Owner: push everything, popping now and then to exercise
                // the last-element race.
                let mut popped = Vec::new();
                for i in 0..n {
                    w.push(i);
                    if i % 7 == 0 {
                        if let Some(v) = w.pop() {
                            popped.push(v);
                        }
                    }
                }
                while let Some(v) = w.pop() {
                    popped.push(v);
                }
                done.store(true, Ordering::Release);
                all.push(popped);
                for h in handles {
                    all.push(h.join().unwrap());
                }
            });

            let mut seen = HashSet::new();
            for v in all.iter().flatten() {
                assert!(seen.insert(*v), "round {round}: value {v} taken twice");
            }
            assert_eq!(seen.len(), n, "round {round}: values lost");
        }
    }

    #[test]
    fn values_left_in_deque_are_dropped() {
        // Drop glue runs for elements never taken (Arc strong counts prove it).
        let marker = Arc::new(());
        {
            let (w, _s) = deque::<Arc<()>>();
            for _ in 0..MIN_CAP * 3 {
                w.push(Arc::clone(&marker));
            }
            assert_eq!(Arc::strong_count(&marker), MIN_CAP * 3 + 1);
        }
        assert_eq!(Arc::strong_count(&marker), 1);
    }
}
