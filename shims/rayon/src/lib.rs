//! Minimal, API-compatible shim for the subset of [`rayon`] this workspace
//! uses — [`ThreadPool`] (via [`ThreadPoolBuilder`]) with [`ThreadPool::join`],
//! [`ThreadPool::install`] and [`ThreadPool::in_place_scope`], plus the free
//! [`join`] function — implemented as a genuine bounded **work-stealing**
//! runtime (the build container has no network access, so the real crate
//! cannot be fetched).
//!
//! # Scheduling rule
//!
//! A pool owns exactly `num_threads` persistent worker threads, created once
//! at [`ThreadPoolBuilder::build`] time and reused for every task (no OS
//! thread is ever spawned per fork).  Each worker owns a **lock-free
//! Chase–Lev deque** of pending tasks (see [`deque`] for the algorithm and
//! its memory-ordering argument), and the pool keeps one shared injector
//! queue for work arriving from threads outside the pool:
//!
//! * **fork** — `join(a, b)` on a worker pushes `b` onto the *bottom*
//!   (newest end) of the worker's own deque as a *pending* task and runs `a`
//!   directly.  The pending task is not committed to anyone: it stays
//!   available until a processor actually executes it.  The fork itself is
//!   **allocation-free**: the job, its result slot and its completion latch
//!   all live in one stack frame of the forking worker (`StackJob`); no
//!   `Box`, no `Arc`, no mutex is touched.
//! * **steal** — an idle worker takes the *oldest* pending task first: the
//!   front of the injector, then the *top* of another worker's deque.  This
//!   is the LoPRAM §3.1 rule that pending pal-threads are activated "in a
//!   manner consistent with order of creation as resources become
//!   available".
//! * **join, help-first** — when the forking worker finishes `a` it pops its
//!   own deque.  If the popped task is `b` (nobody stole it), `b` runs
//!   inline without ever touching its latch — the un-stolen fork costs a
//!   push, a pop and two pointer compares on top of a plain call.  If the
//!   pop returns another pending task this worker created (a scope task
//!   spawned during `a`, or an older fork of an enclosing join once `b`
//!   migrated), the worker executes it (it is that task's creator, so this
//!   is still the §3.1 run-inline rule).  Once the deque is empty, `b` was
//!   stolen: the
//!   worker does not park — it executes other pending tasks while polling
//!   `b`'s latch, so a blocked parent is still a useful processor.
//!
//! # Sleeping and waking
//!
//! Idle workers do not spin and are not herded through one condvar.  A
//! worker with nothing to do publishes itself in a **sleep bitmap** (a
//! `SleepSet`: one `AtomicU64` word per 64 workers, bit *i* mod 64 of
//! word *i* / 64 = worker *i* is parked), re-checks the queues (so a
//! push racing with the announcement is never lost past one
//! `IDLE_POLL`), and parks with a timeout.  Every push wakes **exactly
//! one** sleeper: the pusher claims a set bit with a `fetch_and` and
//! unparks only that worker — waking all `p − 1` sleepers for a single new
//! task (the old `notify_all` thundering herd) cannot happen.  A worker
//! that is deliberately woken but finds no task (another worker got there
//! first) increments the `spurious_wakeups` counter in [`PoolStats`].
//! Completion latches unpark their single owner thread directly.
//!
//! # Health, chaos and self-healing
//!
//! Every worker bumps a per-worker **heartbeat** (milliseconds since pool
//! start) at the top of its loop and around parks; [`ThreadPool::health`]
//! snapshots them into a [`PoolHealth`] together with the alive/dead state
//! of each worker.  Deterministic scheduler-level faults can be injected
//! with a [`ChaosConfig`] on the builder: kill a chosen worker between
//! jobs (its loop exits cooperatively), drop or delay a chosen wakeup
//! notification, or force extra steal-retry rounds — the *rule* deciding
//! where each fault fires is a pure function of the configuration (and,
//! via [`ChaosConfig::seeded`], of one seed), so a failure replays exactly
//! under the same schedule.  A dead worker first drains its own deque into
//! the injector (no pending task is ever stranded) and parks its deque's
//! owner end in the registry.  Recovery is governed by [`SelfHeal`]:
//! either a **supervisor** path — run from idle workers and from external
//! waiters — respawns a replacement thread onto the same index and deque,
//! or the pool **degrades**: the dead worker's sleep bit stays clear, it
//! is excluded as a steal victim, and `alive_workers` shrinks so callers
//! (e.g. `PalPool` in `lopram-core`) can recompute the §3.1 cutoff for
//! the effective processor count.  External latch waits are bounded by
//! `IDLE_POLL` and supervise between parks, so `join`/`install` complete
//! (no infinite park) even after a chaos kill; with *every* worker dead
//! under [`SelfHeal::Degrade`], the external caller executes injected
//! work itself as a last resort rather than hang.
//!
//! Calls from threads that are not pool workers (`install`, `join`, the end
//! of `in_place_scope`) ship the work into the pool and block the calling
//! thread; the `num_threads` workers are therefore the *only* processors,
//! which is what lets `PalPool` in `lopram-core` model a LoPRAM with exactly
//! `p` processors.
//!
//! The pool counts every completed task in [`PoolStats`]: `stolen` (taken
//! from another worker's deque — the task migrated to a processor that
//! freed up), `inlined` (popped back and executed by the thread that
//! created it), and `injected` (shipped in from a non-worker thread, whose
//! creator is not a processor, so neither label applies).  `lopram-core`
//! forwards these to its `RunMetrics` so experiments can observe the
//! paper's Figure 2 cutoff on the real pool.
//!
//! Guarantees relied on by the workspace:
//!
//! * at most `num_threads` tasks of a pool execute concurrently;
//! * `join`/scopes block until every forked task finished, so borrowing the
//!   enclosing stack is safe;
//! * panics in forked tasks propagate to the forking caller;
//! * a pool with one thread degenerates to sequential execution in creation
//!   order.
//!
//! [`rayon`]: https://docs.rs/rayon

pub mod deque;

use std::any::Any;
use std::cell::{RefCell, UnsafeCell};
use std::collections::VecDeque;
use std::fmt;
use std::marker::PhantomData;
use std::mem;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::ptr;
use std::rc::Rc;
use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::thread::{self, Thread};
use std::time::{Duration, Instant};

use deque::Steal;

/// How long an idle or latch-waiting thread parks before re-polling the
/// deques when no wake-up arrives.  All parks — worker *and* external — are
/// bounded by this, so a lost wake-up (or a dead notifier) costs latency,
/// never a deadlock.
const IDLE_POLL: Duration = Duration::from_micros(500);

/// Lock a mutex, ignoring poisoning (tasks catch their own panics, but be
/// defensive: a poisoned queue is still a valid queue).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

// ---------------------------------------------------------------------------
// SleepSet: multi-word sleep bitmap addressing any number of workers.
// ---------------------------------------------------------------------------

/// The sleep bitmap of a pool: bit `i % 64` of word `i / 64` is set while
/// worker `i` is announcing a park.  One `AtomicU64` word covers 64 workers;
/// the set allocates `ceil(threads / 64)` words, so **every** worker — not
/// just the first 64 — can receive a deliberate one-sleeper wake-up.
/// (Previously a single word left workers with `index >= 64` reachable only
/// through the `IDLE_POLL` timeout.)
struct SleepSet {
    words: Box<[AtomicU64]>,
}

impl SleepSet {
    fn new(threads: usize) -> Self {
        let words = threads.div_ceil(u64::BITS as usize).max(1);
        SleepSet {
            words: (0..words).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Announce worker `index` as parking (publish its bit).
    fn announce(&self, index: usize) {
        let bit = 1u64 << (index % 64);
        self.words[index / 64].fetch_or(bit, Ordering::SeqCst);
    }

    /// Withdraw worker `index`'s announcement.  Returns `true` when the bit
    /// was already gone — i.e. a notifier claimed it, making the wake-up
    /// deliberate.
    fn retract(&self, index: usize) -> bool {
        let bit = 1u64 << (index % 64);
        self.words[index / 64].fetch_and(!bit, Ordering::SeqCst) & bit == 0
    }

    /// Claim exactly one announced sleeper, if any; the caller becomes the
    /// only notifier allowed to unpark that worker.
    fn claim_one(&self) -> Option<usize> {
        for (w, word) in self.words.iter().enumerate() {
            loop {
                let map = word.load(Ordering::SeqCst);
                if map == 0 {
                    break;
                }
                let index = map.trailing_zeros() as usize;
                let bit = 1u64 << index;
                if word.fetch_and(!bit, Ordering::SeqCst) & bit != 0 {
                    return Some(w * 64 + index);
                }
                // Lost the race for this bit; rescan the word.
            }
        }
        None
    }
}

// ---------------------------------------------------------------------------
// Chaos, self-healing and health: deterministic scheduler faults + recovery.
// ---------------------------------------------------------------------------

/// Deterministic scheduler-fault injection, set on
/// [`ThreadPoolBuilder::chaos`].  Every trigger rule below is a pure
/// function of this configuration — no clock, no RNG at fire time — so the
/// same config over the same schedule fires the same faults.  (Which
/// schedule *occurs* still depends on real thread interleaving; the
/// determinism contract is about the rule, not the interleaving.)
///
/// The default configuration fires nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Kill this worker: its loop exits cooperatively between jobs (after
    /// draining its deque into the injector, so no pending task is lost).
    pub kill_worker: Option<usize>,
    /// The kill fires once the chosen worker has executed at least this
    /// many tasks in its first incarnation (0 = first idle moment).
    pub kill_after_tasks: u64,
    /// Drop the n-th deliberate wake-up (1-based; 0 = never): the claimed
    /// sleeper is *not* unparked.  Safe by construction — worker parks are
    /// bounded by `IDLE_POLL`, so the victim recovers on its next poll; the
    /// fault costs latency and is visible in `PoolStats::dropped_wakeups`.
    pub drop_wakeup_nth: u64,
    /// Delay the n-th deliberate wake-up (1-based; 0 = never) by spinning
    /// ~50µs before the unpark.
    pub delay_wakeup_nth: u64,
    /// Before each steal attempt, spin through this many forced retry
    /// rounds (as if the victim's deque kept reporting `Steal::Retry`).
    pub steal_retries: u32,
}

impl ChaosConfig {
    /// A configuration that fires nothing (same as `Default`).
    pub fn none() -> Self {
        ChaosConfig::default()
    }

    /// Derive a full fault mix from one seed — a pure function (splitmix64
    /// over the seed), so a seed observed to break something replays
    /// exactly.  Always kills one worker; wake-up faults and steal retries
    /// vary with the seed.
    pub fn seeded(seed: u64, threads: usize) -> Self {
        fn mix(mut z: u64) -> u64 {
            z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        let threads = threads.max(1);
        ChaosConfig {
            kill_worker: Some(mix(seed) as usize % threads),
            kill_after_tasks: mix(seed ^ 1) % 64,
            drop_wakeup_nth: 1 + mix(seed ^ 2) % 32,
            delay_wakeup_nth: 1 + mix(seed ^ 3) % 32,
            steal_retries: (mix(seed ^ 4) % 4) as u32,
        }
    }

    /// Kill worker `index` after it executed `after_tasks` tasks.
    pub fn kill(mut self, index: usize, after_tasks: u64) -> Self {
        self.kill_worker = Some(index);
        self.kill_after_tasks = after_tasks;
        self
    }

    /// Drop the `nth` (1-based) deliberate wake-up notification.
    pub fn drop_wakeup(mut self, nth: u64) -> Self {
        self.drop_wakeup_nth = nth;
        self
    }

    /// Delay the `nth` (1-based) deliberate wake-up notification.
    pub fn delay_wakeup(mut self, nth: u64) -> Self {
        self.delay_wakeup_nth = nth;
        self
    }

    /// Force `rounds` spin retries before every steal attempt.
    pub fn force_steal_retries(mut self, rounds: u32) -> Self {
        self.steal_retries = rounds;
        self
    }

    /// Whether any fault can fire under this configuration.
    pub fn is_active(&self) -> bool {
        *self != ChaosConfig::default()
    }
}

/// What the pool does about a dead worker; see
/// [`ThreadPoolBuilder::self_heal`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SelfHeal {
    /// Supervisors (idle workers and external waiters) respawn a
    /// replacement thread onto the dead worker's index and deque.
    #[default]
    Respawn,
    /// The worker stays dead and the pool degrades: its sleep bit stays
    /// clear, it is excluded as a steal victim, and
    /// [`PoolHealth::alive_workers`] shrinks so callers can re-throttle
    /// for the effective processor count.
    Degrade,
}

/// A point-in-time liveness snapshot of a pool; see [`ThreadPool::health`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolHealth {
    /// Worker slots the pool was built with (`num_threads`).
    pub workers: usize,
    /// Workers currently alive (spawned and not killed).
    pub alive_workers: usize,
    /// Total worker deaths over the pool's lifetime.
    pub killed: u64,
    /// Total respawns over the pool's lifetime.
    pub respawned: u64,
    /// Per-worker liveness, indexed by worker slot.
    pub alive: Vec<bool>,
    /// Per-worker last heartbeat, in milliseconds since the pool started.
    /// A worker beats at the top of its loop and around every park.
    pub last_beat_ms: Vec<u64>,
    /// Milliseconds since the pool started, taken with the snapshot — the
    /// reference point for [`PoolHealth::stalled`].
    pub now_ms: u64,
}

impl PoolHealth {
    /// `true` when at least one worker slot is dead.
    pub fn is_degraded(&self) -> bool {
        self.alive_workers < self.workers
    }

    /// Indices of dead worker slots.
    pub fn dead_workers(&self) -> Vec<usize> {
        (0..self.workers).filter(|&i| !self.alive[i]).collect()
    }

    /// Indices of *alive* workers whose last heartbeat is older than
    /// `threshold` — likely wedged in user code (a dead worker is reported
    /// by [`PoolHealth::dead_workers`], not here).
    pub fn stalled(&self, threshold: Duration) -> Vec<usize> {
        let threshold_ms = threshold.as_millis() as u64;
        (0..self.workers)
            .filter(|&i| {
                self.alive[i] && self.now_ms.saturating_sub(self.last_beat_ms[i]) > threshold_ms
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Latch: one-shot completion flag that unparks its single owner thread.
// ---------------------------------------------------------------------------

/// A one-shot completion latch: an atomic flag plus the handle of the one
/// thread that waits on it.  No mutex, no condvar, no allocation — a
/// [`Thread`] clone is a reference-count bump.
struct WakeLatch {
    state: AtomicUsize,
    /// The waiting thread (the latch's creator); unparked on `set`.
    owner: Thread,
}

impl WakeLatch {
    fn new() -> Self {
        WakeLatch {
            state: AtomicUsize::new(0),
            owner: thread::current(),
        }
    }

    /// `true` once set.  The `Acquire` load pairs with the `Release` store
    /// in [`WakeLatch::set_raw`], ordering the job's result write before the
    /// waiter's read.
    fn probe(&self) -> bool {
        self.state.load(Ordering::Acquire) != 0
    }

    /// Set the latch and wake its owner.
    ///
    /// # Safety
    /// `this` must point to a live latch.  The moment the `Release` store
    /// lands, the owner may observe it and free the latch's memory (it
    /// usually lives in a `StackJob` stack frame), so the owner handle is
    /// cloned out *first* and nothing behind `this` is touched afterwards.
    #[allow(unsafe_code)]
    unsafe fn set_raw(this: *const WakeLatch) {
        let owner = (*this).owner.clone();
        (*this).state.store(1, Ordering::Release);
        // Self-unparks (setting a job one's own latch while inlining an
        // enclosing fork) would leave a stray park token; skip them.
        if owner.id() != thread::current().id() {
            owner.unpark();
        }
    }

    /// Safe wrapper for latches in reference-counted memory ([`ScopeState`]),
    /// where the pointee cannot be freed mid-call.
    fn set(&self) {
        #[allow(unsafe_code)]
        unsafe {
            WakeLatch::set_raw(self)
        };
    }

    /// Block until set — for non-worker threads, which normally do not
    /// execute pool work.  The owner's unpark token makes the
    /// set-before-park race benign; the park is additionally bounded by
    /// `IDLE_POLL` with a supervision pass per wake, so the wait completes
    /// even when the worker that should set the latch died: under
    /// [`SelfHeal::Respawn`] the waiter itself respawns the replacement,
    /// and under [`SelfHeal::Degrade`] with *every* worker dead the waiter
    /// executes injected work directly — a documented degenerate
    /// sequential mode — rather than park forever.
    fn wait_supervised(&self, registry: &Arc<Registry>) {
        while !self.probe() {
            registry.supervise();
            if registry.alive_count.load(Ordering::Relaxed) == 0
                && !registry.terminate.load(Ordering::Acquire)
            {
                // No processor is left and none is coming back: last
                // resort, the caller becomes the processor.
                let job = lock(&registry.injector).pop_front();
                if let Some(job) = job {
                    registry.execute(job, TaskSource::Injector);
                    continue;
                }
            }
            thread::park_timeout(IDLE_POLL);
        }
    }
}

// ---------------------------------------------------------------------------
// Jobs: type-erased pending tasks living in the deques.
// ---------------------------------------------------------------------------

/// A type-erased pointer to a pending task.
///
/// `data` points either at a `StackJob` on the creator's stack (kept alive
/// because the creator blocks until the job's latch is set) or at a leaked
/// [`HeapJob`] box (reclaimed by `execute_heap`).
struct JobRef {
    data: *const (),
    execute_fn: unsafe fn(*const ()),
    /// Whether this job is a pal-thread for [`PoolStats`] accounting.
    /// Internal wrappers (e.g. the `install` trampoline) are not counted.
    counted: bool,
}

// SAFETY: a JobRef is only ever executed once, and the pointed-to job is
// kept alive until its completion latch is set (StackJob) or owns itself
// (HeapJob).  The closures inside are `Send` by the public API bounds.
#[allow(unsafe_code)]
unsafe impl Send for JobRef {}

/// A fork/join or `install` task whose closure, result slot **and
/// completion latch** live on the creating thread's stack — the fork fast
/// path allocates nothing.  The creator never returns before the latch is
/// set (or before running the job itself), so the raw pointer handed out
/// via [`StackJob::as_job_ref`] stays valid for the job's whole life.
struct StackJob<F, R> {
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<thread::Result<R>>>,
    latch: WakeLatch,
}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R,
{
    fn new(func: F) -> Self {
        StackJob {
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(None),
            latch: WakeLatch::new(),
        }
    }

    fn as_job_ref(&self, counted: bool) -> JobRef {
        JobRef {
            data: (self as *const Self).cast::<()>(),
            execute_fn: execute_stack::<F, R>,
            counted,
        }
    }

    /// Run the job on the creating thread itself (the un-stolen fast path).
    /// Skips the latch entirely: completion is synchronous.
    ///
    /// # Safety
    /// Must only be called by the creator, after popping the job's
    /// [`JobRef`] back so no other thread can execute it.
    #[allow(unsafe_code)]
    unsafe fn run_inline(&self) {
        let func = (*self.func.get())
            .take()
            .expect("job executed exactly once");
        let result = catch_unwind(AssertUnwindSafe(func));
        *self.result.get() = Some(result);
    }

    /// Take the result after the latch has been set (or after executing the
    /// job on this very thread).
    ///
    /// # Safety
    /// Must only be called once, after the job ran to completion; the
    /// latch's release/acquire pair (or same-thread execution) provides the
    /// necessary happens-before edge.
    #[allow(unsafe_code)]
    unsafe fn take_result(&self) -> thread::Result<R> {
        (*self.result.get())
            .take()
            .expect("job executed exactly once")
    }
}

/// Execute a `StackJob` on a thread other than its creator.  Setting the
/// latch is the executor's last touch of the creator's stack memory (see
/// [`WakeLatch::set_raw`]).
#[allow(unsafe_code)]
unsafe fn execute_stack<F, R>(data: *const ())
where
    F: FnOnce() -> R,
{
    let job = data.cast::<StackJob<F, R>>();
    let func = (*(*job).func.get())
        .take()
        .expect("job executed exactly once");
    let result = catch_unwind(AssertUnwindSafe(func));
    *(*job).result.get() = Some(result);
    // After `set_raw` the creator may deallocate the job; touch nothing of it.
    WakeLatch::set_raw(&raw const (*job).latch);
}

/// A scope task: boxed closure plus the shared scope state it reports to.
struct HeapJob {
    task: Box<dyn FnOnce(&Scope<'static>) + Send>,
    state: Arc<ScopeState>,
}

/// Execute (and reclaim) a leaked [`HeapJob`].
#[allow(unsafe_code)]
unsafe fn execute_heap(data: *const ()) {
    let job = Box::from_raw(data.cast::<HeapJob>().cast_mut());
    let state = Arc::clone(&job.state);
    let task = job.task;
    let scope = Scope::<'static> {
        state: Arc::clone(&state),
        _marker: PhantomData,
    };
    if let Err(payload) = catch_unwind(AssertUnwindSafe(move || task(&scope))) {
        state.stash_panic(payload);
    }
    state.task_finished();
}

// ---------------------------------------------------------------------------
// Registry: the shared state of one pool — stealers, injector, sleep bitmap.
// ---------------------------------------------------------------------------

/// Where a pending task was taken from, deciding its [`PoolStats`]
/// attribution.
#[derive(Clone, Copy)]
enum TaskSource {
    /// Popped back off the executing worker's own deque: the fork was never
    /// taken by anyone else and runs inline in its creator.
    Own,
    /// Taken from another worker's deque: a genuine steal — the task
    /// migrated to a processor that freed up after its creation.
    Theft,
    /// Taken from the shared injector: work shipped into the pool by a
    /// non-worker thread.  The creator is not a processor, so this is
    /// neither an inline execution nor a worker-to-worker migration.
    Injector,
}

struct Registry {
    threads: usize,
    /// Thief handles onto every worker's Chase–Lev deque; thieves take the
    /// **oldest** pending task of a victim first (deque top).
    stealers: Vec<deque::Stealer<JobRef>>,
    /// Work arriving from threads outside the pool; drained oldest-first.
    /// Mutexed: this is the cold path (one lock per external call, never
    /// per fork).
    injector: Mutex<VecDeque<JobRef>>,
    /// Bit `i` set ⇔ worker `i` announced it is parking.  Pushers claim one
    /// bit and unpark exactly that worker.
    sleep: SleepSet,
    /// Unpark handles of the workers, set by each (re)spawned incarnation
    /// and cleared on death.  Mutexed (not `OnceLock`) so a respawn can
    /// install the replacement thread's handle.
    handles: Vec<Mutex<Option<Thread>>>,
    terminate: AtomicBool,
    /// Tasks stolen from another worker's deque (migrations).
    stolen: AtomicU64,
    /// Tasks popped back and executed by the thread that created them.
    inlined: AtomicU64,
    /// Tasks taken from the injector (created outside the pool).
    injected: AtomicU64,
    /// Deliberate wake-ups that found no task to run (another worker got
    /// there first).
    spurious: AtomicU64,
    /// When the pool started; heartbeats are milliseconds since this.
    epoch: Instant,
    /// Per-worker heartbeat: milliseconds since `epoch` at the worker's
    /// last loop top / park boundary.  Relaxed — a watchdog reading, not a
    /// synchronization edge.
    beats: Vec<AtomicU64>,
    /// Per-worker liveness.  A dying worker drains its deque and parks it
    /// in `orphans` *before* clearing its flag, so a cleared flag implies
    /// no task is stranded behind it.
    alive: Vec<AtomicBool>,
    alive_count: AtomicUsize,
    killed: AtomicU64,
    respawned: AtomicU64,
    /// Owner ends of dead workers' deques, parked here by the death
    /// protocol; `take()`-ing a slot is a supervisor's claim to respawn
    /// that worker (at most one replacement per death).
    orphans: Vec<Mutex<Option<deque::Worker<JobRef>>>>,
    /// Join handles of respawned workers, reaped by `ThreadPool::drop`.
    extra_handles: Mutex<Vec<thread::JoinHandle<()>>>,
    chaos: ChaosConfig,
    self_heal: SelfHeal,
    /// Sequence number of deliberate wake-ups, driving the chaos
    /// drop/delay-nth rules.  Only advanced while chaos is active.
    wakeup_seq: AtomicU64,
    dropped_wakeups: AtomicU64,
    delayed_wakeups: AtomicU64,
    forced_steal_retries: AtomicU64,
}

/// Everything a worker thread needs: the shared registry, its index, and
/// the owner end of its deque.  Lives in a thread-local `Rc` so nested
/// joins can clone it out cheaply without holding a `RefCell` borrow
/// across user code.
struct WorkerCtx {
    registry: Arc<Registry>,
    index: usize,
    worker: deque::Worker<JobRef>,
}

thread_local! {
    /// The worker context of this thread, if it is a pool worker.
    static WORKER: RefCell<Option<Rc<WorkerCtx>>> = const { RefCell::new(None) };
}

/// This thread's worker context within `registry`, if any.
fn current_worker_in(registry: &Arc<Registry>) -> Option<Rc<WorkerCtx>> {
    WORKER.with(|w| {
        w.borrow()
            .as_ref()
            .filter(|ctx| Arc::ptr_eq(&ctx.registry, registry))
            .map(Rc::clone)
    })
}

impl Registry {
    /// Wake exactly one parked worker, if any — the replacement for the old
    /// `notify_all` thundering herd.  The `SeqCst` fence pairs with the
    /// sleeper's `fetch_or`: either the pusher sees the sleeper's bit, or
    /// the sleeper's post-announcement queue re-check sees the pushed task.
    ///
    /// With chaos active, the n-th deliberate wake-up can be dropped (the
    /// claimed sleeper is not unparked — it recovers at its next
    /// `IDLE_POLL`) or delayed.
    fn notify_one(&self) {
        fence(Ordering::SeqCst);
        let Some(index) = self.sleep.claim_one() else {
            return;
        };
        // Claimed: we are the only notifier that unparks this worker.
        if self.chaos.drop_wakeup_nth != 0 || self.chaos.delay_wakeup_nth != 0 {
            let nth = self.wakeup_seq.fetch_add(1, Ordering::Relaxed) + 1;
            if self.chaos.drop_wakeup_nth == nth {
                self.dropped_wakeups.fetch_add(1, Ordering::Relaxed);
                return;
            }
            if self.chaos.delay_wakeup_nth == nth {
                self.delayed_wakeups.fetch_add(1, Ordering::Relaxed);
                let start = Instant::now();
                while start.elapsed() < Duration::from_micros(50) {
                    std::hint::spin_loop();
                }
            }
        }
        self.unpark_worker(index);
    }

    fn unpark_worker(&self, index: usize) {
        if let Some(thread) = &*lock(&self.handles[index]) {
            thread.unpark();
        }
    }

    fn inject(&self, job: JobRef) {
        lock(&self.injector).push_back(job);
        self.notify_one();
    }

    /// Supervisor pass: respawn dead workers (under [`SelfHeal::Respawn`]).
    /// Run from idle workers before parking and from external waiters
    /// between bounded parks, so detection needs no dedicated watchdog
    /// thread.  The fast path — nobody dead — is two relaxed loads.
    fn supervise(self: &Arc<Self>) {
        if self.alive_count.load(Ordering::Relaxed) == self.threads
            || self.terminate.load(Ordering::Acquire)
            || self.self_heal != SelfHeal::Respawn
        {
            return;
        }
        for index in 0..self.threads {
            if self.alive[index].load(Ordering::Acquire) {
                continue;
            }
            // Taking the orphaned deque is the claim: exactly one
            // supervisor respawns each death.
            let Some(worker) = lock(&self.orphans[index]).take() else {
                continue;
            };
            let generation = self.respawned.fetch_add(1, Ordering::Relaxed) + 1;
            self.alive[index].store(true, Ordering::Release);
            self.alive_count.fetch_add(1, Ordering::Relaxed);
            let registry = Arc::clone(self);
            let handle = thread::Builder::new()
                .name(format!("rayon-respawn-{index}-g{generation}"))
                .spawn(move || worker_main(registry, index, worker, generation))
                .expect("failed to respawn pool worker thread");
            lock(&self.extra_handles).push(handle);
        }
    }

    /// Snapshot the per-worker heartbeats and liveness; see
    /// [`ThreadPool::health`].
    fn health(&self) -> PoolHealth {
        PoolHealth {
            workers: self.threads,
            alive_workers: self.alive_count.load(Ordering::Relaxed),
            killed: self.killed.load(Ordering::Relaxed),
            respawned: self.respawned.load(Ordering::Relaxed),
            alive: self
                .alive
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .collect(),
            last_beat_ms: self
                .beats
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            now_ms: self.epoch.elapsed().as_millis() as u64,
        }
    }

    /// Execute a job, attributing it in the pool statistics.
    ///
    /// Never unwinds: every job type catches its own panic and reports it
    /// through its latch or scope, so helping loops survive task failures.
    #[allow(unsafe_code)]
    fn execute(&self, job: JobRef, source: TaskSource) {
        if job.counted {
            let counter = match source {
                TaskSource::Own => &self.inlined,
                TaskSource::Theft => &self.stolen,
                TaskSource::Injector => &self.injected,
            };
            counter.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { (job.execute_fn)(job.data) }
    }
}

impl WorkerCtx {
    /// Bump this worker's heartbeat (milliseconds since pool start).
    fn beat(&self) {
        let now = self.registry.epoch.elapsed().as_millis() as u64;
        self.registry.beats[self.index].store(now, Ordering::Relaxed);
    }

    /// Take one pending task.  Priority: own deque bottom (newest — the
    /// cache-warm fast path for popping one's own fork back), then the
    /// injector front, then the other workers' tops — i.e. thieves always
    /// take the **oldest** pending task of a victim first.  Dead workers
    /// are skipped as victims (their deques were drained into the injector
    /// by the death protocol, so nothing hides behind them).
    fn find_job(&self) -> Option<(JobRef, TaskSource)> {
        if let Some(job) = self.worker.pop() {
            return Some((job, TaskSource::Own));
        }
        if let Some(job) = lock(&self.registry.injector).pop_front() {
            return Some((job, TaskSource::Injector));
        }
        for offset in 1..self.registry.threads {
            let victim = (self.index + offset) % self.registry.threads;
            if !self.registry.alive[victim].load(Ordering::Acquire) {
                continue;
            }
            if self.registry.chaos.steal_retries != 0 {
                // Chaos: behave as if the victim reported `Steal::Retry`
                // this many times before the real attempt.
                self.registry.forced_steal_retries.fetch_add(
                    u64::from(self.registry.chaos.steal_retries),
                    Ordering::Relaxed,
                );
                for _ in 0..self.registry.chaos.steal_retries {
                    std::hint::spin_loop();
                }
            }
            loop {
                match self.registry.stealers[victim].steal() {
                    Steal::Success(job) => return Some((job, TaskSource::Theft)),
                    Steal::Retry => continue,
                    Steal::Empty => break,
                }
            }
        }
        None
    }

    /// Announce this worker in the sleep bitmap, re-check the queues, and
    /// park (bounded by `IDLE_POLL`).  Returns `true` when the wake was a
    /// deliberate notification (our bit was claimed by someone else).
    ///
    /// Doubles as the pool's supervision point: an idle worker about to
    /// park first checks for dead siblings to respawn.
    fn park_idle(&self) -> bool {
        let registry = &self.registry;
        self.beat();
        registry.supervise();
        registry.sleep.announce(self.index);
        // Dekker re-check: a task pushed before our bit became visible was
        // notified to nobody; look once more before actually sleeping.
        if let Some((job, source)) = self.find_job() {
            registry.sleep.retract(self.index);
            registry.execute(job, source);
            return false;
        }
        thread::park_timeout(IDLE_POLL);
        self.beat();
        registry.sleep.retract(self.index)
    }

    /// Help-first wait: execute pending tasks until `latch` is set.  This is
    /// what a worker blocked on a stolen fork does instead of parking.
    fn wait_help(&self, latch: &WakeLatch) {
        loop {
            if latch.probe() {
                return;
            }
            self.beat();
            match self.find_job() {
                Some((job, source)) => self.registry.execute(job, source),
                // Nothing to help with: park briefly.  The latch owner is
                // this thread, so the latch setter unparks us directly; new
                // pushes can claim us through the sleep bitmap.
                None => {
                    self.park_idle();
                }
            }
        }
    }
}

/// Cooperative worker death (chaos kill): make every pending task of this
/// worker reachable again, park the deque for a possible respawn, and only
/// then publish the death.  Ordering matters — by the time `alive[index]`
/// reads `false`, the deque is empty, so thieves skipping a dead victim can
/// never strand a task.
fn worker_die(ctx: Rc<WorkerCtx>) {
    let registry = Arc::clone(&ctx.registry);
    let index = ctx.index;
    // 1. Drain the deque into the injector, preserving creation order.
    let mut drained = Vec::new();
    while let Some(job) = ctx.worker.pop() {
        drained.push(job);
    }
    if !drained.is_empty() {
        let mut injector = lock(&registry.injector);
        // Popped newest-first; reverse back to oldest-first (§3.1 order).
        injector.extend(drained.into_iter().rev());
    }
    // 2. Recover the deque's owner end and park it for a supervisor.
    WORKER.with(|w| *w.borrow_mut() = None);
    let worker = match Rc::try_unwrap(ctx) {
        Ok(ctx) => ctx.worker,
        Err(_) => unreachable!("worker ctx has no clones between jobs"),
    };
    *lock(&registry.orphans[index]) = Some(worker);
    // 3. Publish the death.
    *lock(&registry.handles[index]) = None;
    registry.sleep.retract(index);
    registry.alive[index].store(false, Ordering::Release);
    registry.alive_count.fetch_sub(1, Ordering::Relaxed);
    registry.killed.fetch_add(1, Ordering::Relaxed);
    // 4. Wake a sibling so drained work (and supervision) happens promptly.
    registry.notify_one();
}

fn worker_main(
    registry: Arc<Registry>,
    index: usize,
    worker: deque::Worker<JobRef>,
    generation: u64,
) {
    *lock(&registry.handles[index]) = Some(thread::current());
    let kill_at = match registry.chaos.kill_worker {
        // Only the first incarnation is killable, else a respawned worker
        // would just die again forever.
        Some(victim) if victim == index && generation == 0 => Some(registry.chaos.kill_after_tasks),
        _ => None,
    };
    let mut executed: u64 = 0;
    let ctx = Rc::new(WorkerCtx {
        registry,
        index,
        worker,
    });
    WORKER.with(|w| *w.borrow_mut() = Some(Rc::clone(&ctx)));
    let mut notified = false;
    loop {
        ctx.beat();
        if ctx.registry.terminate.load(Ordering::Acquire) {
            break;
        }
        if kill_at.is_some_and(|at| executed >= at) {
            worker_die(ctx);
            return;
        }
        match ctx.find_job() {
            Some((job, source)) => {
                notified = false;
                executed += 1;
                ctx.registry.execute(job, source);
            }
            None => {
                if notified {
                    // Deliberately woken, yet the task was already gone.
                    ctx.registry.spurious.fetch_add(1, Ordering::Relaxed);
                }
                notified = ctx.park_idle();
            }
        }
    }
}

/// Create a registry plus its `threads` persistent workers.  The deques are
/// created first (so every stealer exists before any worker runs), then
/// each worker thread takes ownership of its deque's owner end.
fn build_registry(
    threads: usize,
    mut name_fn: Box<dyn FnMut(usize) -> String>,
    chaos: ChaosConfig,
    self_heal: SelfHeal,
) -> (Arc<Registry>, Vec<thread::JoinHandle<()>>) {
    let mut owners = Vec::with_capacity(threads);
    let mut stealers = Vec::with_capacity(threads);
    for _ in 0..threads {
        let (worker, stealer) = deque::deque::<JobRef>();
        owners.push(worker);
        stealers.push(stealer);
    }
    let registry = Arc::new(Registry {
        threads,
        stealers,
        injector: Mutex::new(VecDeque::new()),
        sleep: SleepSet::new(threads),
        handles: (0..threads).map(|_| Mutex::new(None)).collect(),
        terminate: AtomicBool::new(false),
        stolen: AtomicU64::new(0),
        inlined: AtomicU64::new(0),
        injected: AtomicU64::new(0),
        spurious: AtomicU64::new(0),
        epoch: Instant::now(),
        beats: (0..threads).map(|_| AtomicU64::new(0)).collect(),
        alive: (0..threads).map(|_| AtomicBool::new(true)).collect(),
        alive_count: AtomicUsize::new(threads),
        killed: AtomicU64::new(0),
        respawned: AtomicU64::new(0),
        orphans: (0..threads).map(|_| Mutex::new(None)).collect(),
        extra_handles: Mutex::new(Vec::new()),
        chaos,
        self_heal,
        wakeup_seq: AtomicU64::new(0),
        dropped_wakeups: AtomicU64::new(0),
        delayed_wakeups: AtomicU64::new(0),
        forced_steal_retries: AtomicU64::new(0),
    });
    let handles = owners
        .into_iter()
        .enumerate()
        .map(|(index, worker)| {
            let registry = Arc::clone(&registry);
            thread::Builder::new()
                .name(name_fn(index))
                .spawn(move || worker_main(registry, index, worker, 0))
                .expect("failed to spawn pool worker thread")
        })
        .collect();
    (registry, handles)
}

// ---------------------------------------------------------------------------
// join
// ---------------------------------------------------------------------------

/// The worker-side join: fork `b` as a pending task, run `a`, then take `b`
/// back (inline, latch-free) or help until the thief finishes it.
fn join_worker<A, B, RA, RB>(ctx: &WorkerCtx, oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let job_b = StackJob::new(oper_b);
    let job_ref = job_b.as_job_ref(true);
    let b_data = job_ref.data;
    ctx.worker.push(job_ref);
    ctx.registry.notify_one();

    let result_a = catch_unwind(AssertUnwindSafe(oper_a));

    // Everything in our deque was pushed by this thread: join forks pop in
    // LIFO stack discipline (each consumed by its own join before `a`
    // returns), but scope tasks spawned during `a` into a still-open scope
    // may remain, sitting *newer* than `b`.  So a pop here yields `b`
    // itself, one of those pending scope tasks, or — once `b` migrated —
    // an older pending fork of an enclosing join on this very stack.  All
    // of them are ours to execute; only `b` (matched by pointer identity)
    // takes the latch-free inline path.
    let mut b_ran_inline = false;
    loop {
        match ctx.worker.pop() {
            Some(job) if ptr::eq(job.data, b_data) => {
                // Nobody freed up in time: the creating processor runs b
                // itself, synchronously — no latch, no wake-up.
                if job.counted {
                    ctx.registry.inlined.fetch_add(1, Ordering::Relaxed);
                }
                #[allow(unsafe_code)]
                unsafe {
                    job_b.run_inline()
                };
                b_ran_inline = true;
                break;
            }
            // Another pending task we created (a scope task spawned during
            // `a`, or an older fork of an enclosing join): running it here
            // is the same §3.1 "no free processor ⇒ creator runs it" rule.
            Some(job) => ctx.registry.execute(job, TaskSource::Own),
            // b migrated to (or is executing on) another processor.
            None => break,
        }
    }
    if !b_ran_inline {
        // Help with other pending work until b's latch is set.  Even if `a`
        // panicked we must wait — b may borrow the enclosing stack.
        ctx.wait_help(&job_b.latch);
    }

    // SAFETY: b has run to completion on some thread (inline above, or latch
    // observed set), with a release/acquire edge ordering its result write
    // before us.
    #[allow(unsafe_code)]
    let result_b = unsafe { job_b.take_result() };

    match (result_a, result_b) {
        (Ok(ra), Ok(rb)) => (ra, rb),
        (Err(payload), _) => resume_unwind(payload),
        (_, Err(payload)) => resume_unwind(payload),
    }
}

/// Ship `op` into the pool and block until it completes, or run it directly
/// when the calling thread already is a worker of this pool.
fn install_in<OP, R>(registry: &Arc<Registry>, op: OP) -> R
where
    OP: FnOnce() -> R + Send,
    R: Send,
{
    if current_worker_in(registry).is_some() {
        return op();
    }
    let job = StackJob::new(op);
    // The trampoline itself is not a pal-thread; don't count it.
    registry.inject(job.as_job_ref(false));
    // Non-workers are not processors: park (supervised) instead of stealing.
    job.latch.wait_supervised(registry);
    // SAFETY: latch set ⇒ the job ran and wrote its result.
    #[allow(unsafe_code)]
    match unsafe { job.take_result() } {
        Ok(result) => result,
        Err(payload) => resume_unwind(payload),
    }
}

fn join_in<A, B, RA, RB>(registry: &Arc<Registry>, oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    match current_worker_in(registry) {
        Some(ctx) => join_worker(&ctx, oper_a, oper_b),
        None => install_in(registry, move || {
            match current_worker_in(registry) {
                Some(ctx) => join_worker(&ctx, oper_a, oper_b),
                // Every worker is dead (degraded pool): the trampoline ran
                // on the external caller itself, which cannot fork — run
                // both closures sequentially.  `b`'s panic is surfaced only
                // if `a` did not panic, matching `join_worker`'s order.
                None => {
                    let result_a = catch_unwind(AssertUnwindSafe(oper_a));
                    let result_b = catch_unwind(AssertUnwindSafe(oper_b));
                    match (result_a, result_b) {
                        (Ok(ra), Ok(rb)) => (ra, rb),
                        (Err(payload), _) => resume_unwind(payload),
                        (_, Err(payload)) => resume_unwind(payload),
                    }
                }
            }
        }),
    }
}

/// The global registry backing the free [`join`] when called outside any
/// pool, sized to the host's parallelism like rayon's global pool.  Its
/// workers are leaked (never joined), again like the real crate.
fn global_registry() -> &'static Arc<Registry> {
    static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let (registry, handles) = build_registry(
            default_parallelism(),
            Box::new(|i| format!("rayon-global-{i}")),
            ChaosConfig::default(),
            SelfHeal::default(),
        );
        drop(handles);
        registry
    })
}

fn default_parallelism() -> usize {
    thread::available_parallelism().map_or(1, usize::from)
}

/// Execute `oper_a` and `oper_b`, potentially in parallel, and return both
/// results — the shim of `rayon::join`.
///
/// On a pool worker thread this forks within that worker's pool; elsewhere
/// it uses a host-sized global pool.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let current = WORKER.with(|w| w.borrow().clone());
    match current {
        Some(ctx) => join_worker(&ctx, oper_a, oper_b),
        None => join_in(global_registry(), oper_a, oper_b),
    }
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

/// Scheduling counters of a [`ThreadPool`]; see [`ThreadPool::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Pending tasks taken from another worker's deque — each is one
    /// successful steal, i.e. one pal-thread that migrated to a processor
    /// that freed up after the task's creation.
    pub stolen: u64,
    /// Pending tasks popped back and executed by the thread that created
    /// them (the fork was never taken by anyone else).
    pub inlined: u64,
    /// Pending tasks taken from the shared injector: created by a
    /// non-worker thread and executed by some pool worker.  Not a
    /// migration (the creator was never a processor), so these are kept
    /// apart from `stolen`.
    pub injected: u64,
    /// Deliberate worker wake-ups that found no pending task (the task was
    /// claimed by another processor first).  With one-sleeper-per-push
    /// waking this stays near zero; the old `notify_all` herd would have
    /// counted nearly `p − 1` of these per fork.
    pub spurious_wakeups: u64,
    /// Workers killed by a chaos fault (see [`ChaosConfig::kill`]).
    pub killed: u64,
    /// Dead workers respawned by a supervisor (see [`SelfHeal::Respawn`]).
    pub respawned: u64,
    /// Deliberate wake-up notifications dropped by a chaos fault.
    pub dropped_wakeups: u64,
    /// Deliberate wake-up notifications delayed by a chaos fault.
    pub delayed_wakeups: u64,
    /// Steal-retry rounds forced by a chaos fault.
    pub forced_steal_retries: u64,
}

/// A bounded work-stealing fork/join pool — the shim of `rayon::ThreadPool`.
pub struct ThreadPool {
    registry: Arc<Registry>,
    handles: Vec<thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Number of worker threads this pool was built with.
    pub fn current_num_threads(&self) -> usize {
        self.registry.threads
    }

    /// Index of the calling thread within this pool's workers, or `None`
    /// when the caller is not one of this pool's workers (external threads
    /// and workers of *other* pools both report `None`).  Mirrors
    /// `rayon::ThreadPool::current_thread_index`.
    pub fn current_thread_index(&self) -> Option<usize> {
        current_worker_in(&self.registry).map(|ctx| ctx.index)
    }

    /// Snapshot of this pool's scheduling counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            stolen: self.registry.stolen.load(Ordering::Relaxed),
            inlined: self.registry.inlined.load(Ordering::Relaxed),
            injected: self.registry.injected.load(Ordering::Relaxed),
            spurious_wakeups: self.registry.spurious.load(Ordering::Relaxed),
            killed: self.registry.killed.load(Ordering::Relaxed),
            respawned: self.registry.respawned.load(Ordering::Relaxed),
            dropped_wakeups: self.registry.dropped_wakeups.load(Ordering::Relaxed),
            delayed_wakeups: self.registry.delayed_wakeups.load(Ordering::Relaxed),
            forced_steal_retries: self.registry.forced_steal_retries.load(Ordering::Relaxed),
        }
    }

    /// Snapshot of this pool's worker liveness and heartbeats.  Also runs a
    /// supervision pass first, so merely *observing* health of a
    /// [`SelfHeal::Respawn`] pool kicks off pending respawns.
    pub fn health(&self) -> PoolHealth {
        self.registry.supervise();
        self.registry.health()
    }

    /// Run two closures, potentially in parallel on this pool; see [`join`].
    ///
    /// Called from outside the pool this blocks the caller and runs both
    /// closures on pool workers; called from a worker it forks in place.
    pub fn join<A, B, RA, RB>(&self, oper_a: A, oper_b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        join_in(&self.registry, oper_a, oper_b)
    }

    /// Execute `op` within the pool: on a worker thread, with nested calls
    /// to the free [`join`] bounded by this pool.  Blocks the caller until
    /// `op` returns.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        install_in(&self.registry, op)
    }

    /// Open a scope on the calling thread in which tasks can be spawned
    /// onto this pool; the scope returns only after every spawned task has
    /// finished.
    pub fn in_place_scope<'scope, OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce(&Scope<'scope>) -> R,
    {
        scope_in(Arc::clone(&self.registry), op)
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Every public entry point waits for its tasks before returning, so
        // the deques are empty here; wake everyone so the workers observe
        // the flag promptly (parked or not, IDLE_POLL bounds the wait).
        self.registry.terminate.store(true, Ordering::Release);
        for handle in &self.registry.handles {
            if let Some(thread) = &*lock(handle) {
                thread.unpark();
            }
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        // Reap respawned workers too.  Loop: joining one could in principle
        // race with a final supervise() pushing another (it cannot once
        // `terminate` is set, but the loop makes that independent of
        // supervise()'s internals).
        loop {
            let drained: Vec<_> = lock(&self.registry.extra_handles).drain(..).collect();
            if drained.is_empty() {
                break;
            }
            for handle in drained {
                let _ = handle.join();
            }
        }
    }
}

impl fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.registry.threads)
            .finish_non_exhaustive()
    }
}

/// Builder for [`ThreadPool`] — the shim of `rayon::ThreadPoolBuilder`.
/// The chaos/self-healing knobs ([`ThreadPoolBuilder::chaos`],
/// [`ThreadPoolBuilder::self_heal`]) are extensions of this shim, not part
/// of the real crate's API.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
    thread_name: Option<Box<dyn FnMut(usize) -> String>>,
    chaos: ChaosConfig,
    self_heal: SelfHeal,
}

impl ThreadPoolBuilder {
    /// Start building a pool.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Use exactly `num_threads` worker threads (0 means the host's
    /// parallelism).
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Name the persistent worker threads (applied at build time; workers
    /// are created once, not per fork).  Respawned replacements synthesize
    /// their own `rayon-respawn-{index}-g{generation}` names.
    pub fn thread_name<F>(mut self, name_fn: F) -> Self
    where
        F: FnMut(usize) -> String + 'static,
    {
        self.thread_name = Some(Box::new(name_fn));
        self
    }

    /// Inject deterministic scheduler faults; see [`ChaosConfig`].
    pub fn chaos(mut self, chaos: ChaosConfig) -> Self {
        self.chaos = chaos;
        self
    }

    /// What to do about dead workers; see [`SelfHeal`].  Defaults to
    /// [`SelfHeal::Respawn`].
    pub fn self_heal(mut self, self_heal: SelfHeal) -> Self {
        self.self_heal = self_heal;
        self
    }

    /// Build the pool, spawning its persistent workers.  Never fails in
    /// this shim; the `Result` mirrors the real crate's signature.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            default_parallelism()
        } else {
            self.num_threads
        };
        let name_fn = self
            .thread_name
            .unwrap_or_else(|| Box::new(|i| format!("rayon-worker-{i}")));
        let (registry, handles) = build_registry(threads, name_fn, self.chaos, self.self_heal);
        Ok(ThreadPool { registry, handles })
    }
}

impl fmt::Debug for ThreadPoolBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadPoolBuilder")
            .field("num_threads", &self.num_threads)
            .finish_non_exhaustive()
    }
}

/// Error building a [`ThreadPool`]; never produced by this shim.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

// ---------------------------------------------------------------------------
// Scope
// ---------------------------------------------------------------------------

/// Shared state of one scope: the pool it spawns into, the count of
/// unfinished tasks (plus one guard for the scope body), and the first panic
/// observed in a spawned task.
struct ScopeState {
    registry: Arc<Registry>,
    pending: AtomicUsize,
    latch: WakeLatch,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl ScopeState {
    fn stash_panic(&self, payload: Box<dyn Any + Send>) {
        lock(&self.panic).get_or_insert(payload);
    }

    fn task_finished(&self) {
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.latch.set();
        }
    }
}

/// A scope in which tasks borrowing `'scope` data can be spawned — the shim
/// of `rayon::Scope`.
pub struct Scope<'scope> {
    state: Arc<ScopeState>,
    // Invariant in 'scope, like the real crate.
    _marker: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Spawn a pending task into the pool: onto this worker's own deque when
    /// called from a pool worker, onto the shared injector otherwise.  The
    /// task stays pending until a processor picks it up — idle processors
    /// take pending tasks oldest-first, while a creator draining its own
    /// leftovers at scope end takes the newest first (LIFO).  The enclosing
    /// scope waits for it, and a panic in it propagates from the scope
    /// entry point after all sibling tasks finished.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.state.pending.fetch_add(1, Ordering::AcqRel);
        let task: Box<dyn FnOnce(&Scope<'scope>) + Send + 'scope> = Box::new(f);
        // SAFETY: the scope entry point waits for `pending` to reach zero
        // before returning (even when the scope body panics), so the task
        // cannot outlive the `'scope` data it borrows.  `Scope<'scope>` and
        // `Scope<'static>` differ only in a PhantomData lifetime.
        #[allow(unsafe_code)]
        let task: Box<dyn FnOnce(&Scope<'static>) + Send + 'static> =
            unsafe { mem::transmute(task) };
        let job = Box::new(HeapJob {
            task,
            state: Arc::clone(&self.state),
        });
        let job_ref = JobRef {
            data: (Box::into_raw(job) as *const HeapJob).cast::<()>(),
            execute_fn: execute_heap,
            counted: true,
        };
        match current_worker_in(&self.state.registry) {
            Some(ctx) => {
                ctx.worker.push(job_ref);
                ctx.registry.notify_one();
            }
            None => self.state.registry.inject(job_ref),
        }
    }
}

impl fmt::Debug for Scope<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scope").finish_non_exhaustive()
    }
}

fn scope_in<'scope, OP, R>(registry: Arc<Registry>, op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R,
{
    let state = Arc::new(ScopeState {
        registry,
        // One guard for the scope body itself, so the latch cannot fire
        // while the body is still spawning.
        pending: AtomicUsize::new(1),
        latch: WakeLatch::new(),
        panic: Mutex::new(None),
    });
    let scope = Scope {
        state: Arc::clone(&state),
        _marker: PhantomData,
    };
    let result = catch_unwind(AssertUnwindSafe(|| op(&scope)));
    // Body done (or unwound): release its guard, then wait for every
    // spawned task — they may borrow 'scope data, so this must happen even
    // when the body panicked.
    state.task_finished();
    match current_worker_in(&state.registry) {
        Some(ctx) => ctx.wait_help(&state.latch),
        None => state.latch.wait_supervised(&state.registry),
    }
    let stashed = lock(&state.panic).take();
    match result {
        Err(payload) => resume_unwind(payload),
        Ok(value) => {
            if let Some(payload) = stashed {
                resume_unwind(payload);
            }
            value
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::time::Instant;

    #[test]
    fn free_join_returns_both_results() {
        let (a, b) = join(|| 1 + 1, || "abc".len());
        assert_eq!((a, b), (2, 3));
    }

    #[test]
    fn pool_join_recursive_sum() {
        fn sum(pool: &ThreadPool, data: &[u64]) -> u64 {
            if data.len() <= 4 {
                return data.iter().sum();
            }
            let (lo, hi) = data.split_at(data.len() / 2);
            let (a, b) = pool.join(|| sum(pool, lo), || sum(pool, hi));
            a + b
        }
        let data: Vec<u64> = (0..1024).collect();
        for p in [1, 2, 4] {
            let pool = ThreadPoolBuilder::new().num_threads(p).build().unwrap();
            assert_eq!(sum(&pool, &data), 1023 * 1024 / 2, "p = {p}");
        }
    }

    #[test]
    fn workers_are_created_once_and_reused() {
        // The acceptance property for the runtime rewrite: many forks, yet
        // every closure runs on one of the p persistent workers — no
        // per-fork OS thread is ever spawned.
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let ids = Mutex::new(HashSet::new());
        fn fanout(pool: &ThreadPool, depth: usize, ids: &Mutex<HashSet<thread::ThreadId>>) {
            ids.lock().unwrap().insert(thread::current().id());
            if depth == 0 {
                return;
            }
            pool.join(
                || fanout(pool, depth - 1, ids),
                || fanout(pool, depth - 1, ids),
            );
        }
        // Run entirely inside the pool so only worker threads are recorded
        // (the external caller parks; it is not a processor).
        pool.install(|| fanout(&pool, 7, &ids)); // 255 forks
        let distinct = ids.lock().unwrap().len();
        assert!(
            distinct <= 3,
            "{distinct} distinct threads executed tasks of a 3-worker pool"
        );
    }

    #[test]
    fn worker_threads_carry_the_builder_name() {
        let pool = ThreadPoolBuilder::new()
            .num_threads(2)
            .thread_name(|i| format!("shim-test-{i}"))
            .build()
            .unwrap();
        let name = pool.install(|| thread::current().name().map(str::to_owned));
        assert!(name.unwrap().starts_with("shim-test-"));
    }

    #[test]
    fn idle_worker_steals_pending_fork() {
        // p = 2: the forking worker blocks inside `a` until the other worker
        // has stolen and executed the pending `b` — the migration property.
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let released = AtomicBool::new(false);
        pool.join(
            || {
                let start = Instant::now();
                while !released.load(Ordering::Acquire) {
                    assert!(
                        start.elapsed() < Duration::from_secs(10),
                        "pending fork was never stolen by the idle worker"
                    );
                    thread::sleep(Duration::from_millis(1));
                }
            },
            || released.store(true, Ordering::Release),
        );
        assert!(pool.stats().stolen >= 1);
    }

    #[test]
    fn stats_split_between_stolen_and_inlined() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        pool.join(|| (), || ());
        pool.join(|| (), || ());
        let stats = pool.stats();
        // One worker: forks are always popped back by their creator.
        assert_eq!(stats.stolen, 0);
        assert_eq!(stats.inlined, 2);
        assert_eq!(stats.injected, 0);
    }

    #[test]
    fn external_scope_spawns_count_as_injected_not_stolen() {
        // Regression: a one-worker pool cannot migrate anything, so scope
        // tasks shipped in from the outside must not be attributed as
        // steals (they are `injected`: their creator is not a processor).
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let counter = AtomicUsize::new(0);
        pool.in_place_scope(|s| {
            for _ in 0..8 {
                let counter = &counter;
                s.spawn(move |_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 8);
        let stats = pool.stats();
        assert_eq!(stats.stolen, 0);
        assert_eq!(stats.inlined, 0);
        assert_eq!(stats.injected, 8);
    }

    #[test]
    fn deep_unbalanced_recursion_grows_the_deque() {
        // Each level parks one pending fork and recurses in `a`, so a
        // 1-worker pool accumulates `depth` pending tasks on a single deque
        // — several buffer growths past the initial capacity.  Everything
        // must come back inline, in LIFO order, with nothing lost.
        fn chain(pool: &ThreadPool, depth: usize, count: &AtomicUsize) {
            if depth == 0 {
                return;
            }
            pool.join(
                || chain(pool, depth - 1, count),
                || {
                    count.fetch_add(1, Ordering::Relaxed);
                },
            );
        }
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let count = AtomicUsize::new(0);
        pool.install(|| chain(&pool, 300, &count));
        assert_eq!(count.load(Ordering::Relaxed), 300);
        assert_eq!(pool.stats().inlined, 300);
    }

    #[test]
    fn spurious_wakeups_are_counted_not_hidden() {
        // With one-sleeper-per-push waking, deliberate wake-ups that find
        // no work are rare (measured 0-1 per thousand forks on a loaded
        // 1-CPU host).  A notify_all-style herd would produce up to
        // (p-1) × forks of them, so a bound at a quarter of the fork count
        // both tolerates scheduling noise and catches the herd coming back.
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        fn fanout(pool: &ThreadPool, depth: usize) {
            if depth == 0 {
                return;
            }
            pool.join(|| fanout(pool, depth - 1), || fanout(pool, depth - 1));
        }
        pool.install(|| fanout(&pool, 10)); // 1023 forks
        let stats = pool.stats();
        let forks = stats.stolen + stats.inlined;
        assert_eq!(forks, 1023);
        assert!(
            stats.spurious_wakeups <= forks / 4,
            "spurious wakeups ({}) must stay far below the fork count \
             ({forks}); a thundering-herd regression would exceed it",
            stats.spurious_wakeups
        );
    }

    #[test]
    fn pool_join_propagates_child_panic_and_stays_usable() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.join(|| 1, || -> i32 { panic!("boom") });
        }));
        assert!(result.is_err());
        assert_eq!(pool.join(|| 1, || 2), (1, 2));
    }

    #[test]
    fn pool_join_propagates_panic_from_first_closure() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.join(|| -> i32 { panic!("boom a") }, || 2);
        }));
        assert!(result.is_err());
        assert_eq!(pool.join(|| 1, || 2), (1, 2));
    }

    #[test]
    fn scope_runs_all_tasks_and_borrows_stack() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let counter = AtomicUsize::new(0);
        pool.in_place_scope(|s| {
            for _ in 0..50 {
                let counter = &counter;
                s.spawn(move |_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn scope_tasks_can_spawn_nested_tasks() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let counter = AtomicUsize::new(0);
        pool.in_place_scope(|s| {
            let counter = &counter;
            s.spawn(move |inner| {
                counter.fetch_add(1, Ordering::SeqCst);
                inner.spawn(move |_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            });
        });
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn single_thread_scope_runs_inline_in_creation_order() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let order = Mutex::new(Vec::new());
        pool.in_place_scope(|s| {
            for i in 0..10 {
                let order = &order;
                s.spawn(move |_| order.lock().unwrap().push(i));
            }
        });
        assert_eq!(*order.lock().unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn scope_task_panic_propagates_after_joining_all() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let ran = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.in_place_scope(|s| {
                s.spawn(|_| panic!("task failed"));
                let ran = &ran;
                s.spawn(move |_| {
                    ran.fetch_add(1, Ordering::SeqCst);
                });
            });
        }));
        assert!(result.is_err());
        assert_eq!(ran.load(Ordering::SeqCst), 1, "sibling task still ran");
    }

    #[test]
    fn install_bounds_the_free_join() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let total = pool.install(|| {
            let data: Vec<u64> = (0..256).collect();
            fn sum(data: &[u64]) -> u64 {
                if data.len() <= 8 {
                    return data.iter().sum();
                }
                let (lo, hi) = data.split_at(data.len() / 2);
                let (a, b) = join(|| sum(lo), || sum(hi));
                a + b
            }
            sum(&data)
        });
        assert_eq!(total, 255 * 256 / 2);
    }

    #[test]
    fn dropping_a_pool_terminates_its_workers() {
        let pool = ThreadPoolBuilder::new()
            .num_threads(2)
            .thread_name(|i| format!("drop-test-{i}"))
            .build()
            .unwrap();
        assert_eq!(pool.join(|| 1, || 2), (1, 2));
        drop(pool); // joins both workers; hangs here would fail the test run
    }

    #[test]
    fn nested_pools_do_not_interfere() {
        let outer = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let inner = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let (a, b) = outer.join(|| inner.join(|| 1, || 2), || inner.install(|| 10));
        assert_eq!((a, b), ((1, 2), 10));
    }

    // -- sleep set, health, chaos ------------------------------------------

    #[test]
    fn sleep_set_addresses_indices_beyond_64() {
        // Regression for the old single-word bitmap: workers with
        // index >= 64 could never be claimed for a deliberate wake-up.
        let set = SleepSet::new(70);
        assert_eq!(set.words.len(), 2);
        set.announce(65);
        assert_eq!(set.claim_one(), Some(65));
        assert_eq!(set.claim_one(), None);
        // Lower words are still scanned first.
        set.announce(65);
        set.announce(3);
        assert_eq!(set.claim_one(), Some(3));
        assert_eq!(set.claim_one(), Some(65));
    }

    #[test]
    fn sleep_set_retract_reports_claims() {
        let set = SleepSet::new(128);
        set.announce(100);
        // Bit still present: the retract itself removes it — not claimed.
        assert!(!set.retract(100));
        set.announce(100);
        assert_eq!(set.claim_one(), Some(100));
        // Bit already gone: a notifier claimed it — deliberate wake-up.
        assert!(set.retract(100));
    }

    #[test]
    fn wide_pool_runs_forks_on_high_index_workers() {
        // 66 workers: indices 64 and 65 exist beyond the first bitmap word.
        // Before the SleepSet they only woke via IDLE_POLL; either way the
        // pool must complete fork trees with exact accounting.
        let pool = ThreadPoolBuilder::new().num_threads(66).build().unwrap();
        fn fanout(pool: &ThreadPool, depth: usize) {
            if depth == 0 {
                return;
            }
            pool.join(|| fanout(pool, depth - 1), || fanout(pool, depth - 1));
        }
        pool.install(|| fanout(&pool, 8)); // 255 forks
        let stats = pool.stats();
        assert_eq!(stats.stolen + stats.inlined, 255);
    }

    #[test]
    fn chaos_seeded_is_a_pure_function_of_the_seed() {
        let a = ChaosConfig::seeded(42, 4);
        let b = ChaosConfig::seeded(42, 4);
        assert_eq!(a, b);
        assert!(a.is_active());
        assert!(a.kill_worker.unwrap() < 4);
        assert!(a.drop_wakeup_nth >= 1 && a.delay_wakeup_nth >= 1);
        assert!(!ChaosConfig::none().is_active());
    }

    #[test]
    fn health_snapshot_reports_live_heartbeats() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        pool.join(|| 1, || 2);
        let health = pool.health();
        assert_eq!(health.workers, 2);
        assert_eq!(health.alive_workers, 2);
        assert!(!health.is_degraded());
        assert_eq!(health.dead_workers(), Vec::<usize>::new());
        assert_eq!(health.killed, 0);
        // Workers beat at least every IDLE_POLL; nothing can be stalled by
        // a generous threshold.
        assert_eq!(health.stalled(Duration::from_secs(30)), Vec::<usize>::new());
    }

    /// Poll `pool.health()` until `ok` holds, failing after 10s.
    fn wait_health(pool: &ThreadPool, what: &str, ok: impl Fn(&PoolHealth) -> bool) -> PoolHealth {
        let start = Instant::now();
        loop {
            let health = pool.health();
            if ok(&health) {
                return health;
            }
            assert!(
                start.elapsed() < Duration::from_secs(10),
                "pool health never reached: {what}; last {health:?}"
            );
            thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn chaos_kill_is_healed_by_respawn() {
        let pool = ThreadPoolBuilder::new()
            .num_threads(2)
            .chaos(ChaosConfig::none().kill(1, 0))
            .self_heal(SelfHeal::Respawn)
            .build()
            .unwrap();
        // The kill fires at worker 1's first loop top; joins must still
        // complete (liveness) with correct results.
        fn sum(pool: &ThreadPool, data: &[u64]) -> u64 {
            if data.len() <= 4 {
                return data.iter().sum();
            }
            let (lo, hi) = data.split_at(data.len() / 2);
            let (a, b) = pool.join(|| sum(pool, lo), || sum(pool, hi));
            a + b
        }
        let data: Vec<u64> = (0..512).collect();
        assert_eq!(pool.install(|| sum(&pool, &data)), 511 * 512 / 2);
        let health = wait_health(&pool, "respawned back to 2 alive", |h| {
            h.alive_workers == 2 && h.killed == 1
        });
        assert!(health.respawned >= 1);
        assert!(!health.is_degraded());
        let stats = pool.stats();
        assert_eq!(stats.killed, 1);
        assert!(stats.respawned >= 1);
        // Still fully usable afterwards (and Drop reaps the respawned
        // thread without hanging).
        assert_eq!(pool.join(|| 1, || 2), (1, 2));
    }

    #[test]
    fn chaos_kill_degrades_without_stranding_work() {
        let pool = ThreadPoolBuilder::new()
            .num_threads(2)
            .chaos(ChaosConfig::none().kill(1, 0))
            .self_heal(SelfHeal::Degrade)
            .build()
            .unwrap();
        fn sum(pool: &ThreadPool, data: &[u64]) -> u64 {
            if data.len() <= 4 {
                return data.iter().sum();
            }
            let (lo, hi) = data.split_at(data.len() / 2);
            let (a, b) = pool.join(|| sum(pool, lo), || sum(pool, hi));
            a + b
        }
        let data: Vec<u64> = (0..512).collect();
        assert_eq!(pool.install(|| sum(&pool, &data)), 511 * 512 / 2);
        let health = wait_health(&pool, "degraded to 1 alive", |h| {
            h.alive_workers == 1 && h.killed == 1
        });
        assert!(health.is_degraded());
        assert_eq!(health.dead_workers(), vec![1]);
        assert_eq!(health.respawned, 0);
        // The surviving worker keeps serving.
        assert_eq!(pool.join(|| 1, || 2), (1, 2));
    }

    #[test]
    fn fully_dead_degraded_pool_falls_back_to_caller_execution() {
        // p = 1, the only worker killed, no respawn: the external caller
        // must complete the join itself instead of parking forever.
        let pool = ThreadPoolBuilder::new()
            .num_threads(1)
            .chaos(ChaosConfig::none().kill(0, 0))
            .self_heal(SelfHeal::Degrade)
            .build()
            .unwrap();
        wait_health(&pool, "the only worker dead", |h| h.alive_workers == 0);
        assert_eq!(pool.join(|| 1, || 2), (1, 2));
        assert_eq!(pool.install(|| 7), 7);
        let counter = AtomicUsize::new(0);
        pool.in_place_scope(|s| {
            for _ in 0..16 {
                let counter = &counter;
                s.spawn(move |_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 16);
        let health = pool.health();
        assert_eq!(health.alive_workers, 0);
        assert_eq!(health.killed, 1);
    }

    #[test]
    fn dropped_wakeup_costs_latency_not_liveness() {
        let pool = ThreadPoolBuilder::new()
            .num_threads(2)
            .chaos(ChaosConfig::none().drop_wakeup(1).delay_wakeup(2))
            .build()
            .unwrap();
        fn fanout(pool: &ThreadPool, depth: usize) {
            if depth == 0 {
                return;
            }
            pool.join(|| fanout(pool, depth - 1), || fanout(pool, depth - 1));
        }
        pool.install(|| fanout(&pool, 9)); // 511 forks
        let stats = pool.stats();
        assert_eq!(stats.stolen + stats.inlined, 511);
        // Whether the nth deliberate wake-up occurred depends on the
        // schedule, but each fault fires at most once.
        assert!(stats.dropped_wakeups <= 1);
        assert!(stats.delayed_wakeups <= 1);
    }

    #[test]
    fn forced_steal_retries_are_counted() {
        let pool = ThreadPoolBuilder::new()
            .num_threads(2)
            .chaos(ChaosConfig::none().force_steal_retries(2))
            .build()
            .unwrap();
        fn fanout(pool: &ThreadPool, depth: usize) {
            if depth == 0 {
                return;
            }
            pool.join(|| fanout(pool, depth - 1), || fanout(pool, depth - 1));
        }
        pool.install(|| fanout(&pool, 8));
        let stats = pool.stats();
        assert_eq!(stats.stolen + stats.inlined, 255);
        // Every steal attempt (idle workers make plenty) paid the retries.
        assert!(stats.forced_steal_retries > 0);
    }

    #[test]
    fn seeded_chaos_pool_completes_fork_trees_exactly() {
        // The acceptance shape: a full seeded fault mix (kill + wake-up
        // faults + steal retries) and the pool still completes the tree
        // with exact fork accounting.
        for seed in [7u64, 19, 42] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(3)
                .chaos(ChaosConfig::seeded(seed, 3))
                .self_heal(SelfHeal::Respawn)
                .build()
                .unwrap();
            fn fanout(pool: &ThreadPool, depth: usize) -> u64 {
                if depth == 0 {
                    return 1;
                }
                let (a, b) = pool.join(|| fanout(pool, depth - 1), || fanout(pool, depth - 1));
                a + b
            }
            assert_eq!(pool.install(|| fanout(&pool, 9)), 512, "seed {seed}");
            let stats = pool.stats();
            assert_eq!(stats.stolen + stats.inlined, 511, "seed {seed}");
        }
    }
}
