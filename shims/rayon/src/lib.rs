//! Minimal, API-compatible shim for the subset of [`rayon`] this workspace
//! uses: [`ThreadPool`] (via [`ThreadPoolBuilder`]) with [`ThreadPool::join`],
//! [`ThreadPool::install`] and [`ThreadPool::in_place_scope`], plus the free
//! [`join`] function.
//!
//! The build container has no network access, so the real crate cannot be
//! fetched.  Instead of a work-stealing deque runtime, this shim bounds
//! parallelism with a counting semaphore of `p − 1` "extra processor" permits
//! (the calling thread is the remaining processor): a forked task runs on a
//! fresh OS thread when a permit is free and inline in its parent otherwise.
//! That preserves the properties the workspace relies on —
//!
//! * at most `num_threads` tasks of a pool execute concurrently,
//! * `join`/scopes block until every forked task finished, so borrowing the
//!   enclosing stack is safe,
//! * panics in forked tasks propagate to the forking caller,
//! * a pool with one thread degenerates to sequential execution in creation
//!   order —
//!
//! but tasks that were folded into their parent never migrate to a processor
//! that frees up later, and one OS thread is spawned per forked task rather
//! than reusing `p` workers.  Both are acceptable for the test/bench
//! workloads here and can be revisited by swapping in the real crate.
//!
//! [`rayon`]: https://docs.rs/rayon

use std::any::Any;
use std::cell::RefCell;
use std::fmt;
use std::marker::PhantomData;
use std::mem;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread;

/// Non-blocking counting semaphore over "extra processor" permits.
#[derive(Debug)]
struct Tokens {
    free: AtomicUsize,
}

impl Tokens {
    fn new(extra: usize) -> Arc<Self> {
        Arc::new(Tokens {
            free: AtomicUsize::new(extra),
        })
    }

    fn try_acquire(self: &Arc<Self>) -> Option<Permit> {
        let mut cur = self.free.load(Ordering::Acquire);
        loop {
            if cur == 0 {
                return None;
            }
            match self
                .free
                .compare_exchange_weak(cur, cur - 1, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => {
                    return Some(Permit {
                        tokens: Arc::clone(self),
                    })
                }
                Err(seen) => cur = seen,
            }
        }
    }
}

/// RAII permit for one extra processor; released on drop (including panic).
#[derive(Debug)]
struct Permit {
    tokens: Arc<Tokens>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.tokens.free.fetch_add(1, Ordering::AcqRel);
    }
}

thread_local! {
    /// The token pool `install`ed on (or inherited by) the current thread.
    static CURRENT: RefCell<Option<Arc<Tokens>>> = const { RefCell::new(None) };
}

/// Restores the previous thread-local token pool on drop.
struct CurrentReset {
    prev: Option<Arc<Tokens>>,
}

impl Drop for CurrentReset {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CURRENT.with(|c| *c.borrow_mut() = prev);
    }
}

fn set_current(tokens: Arc<Tokens>) -> CurrentReset {
    CURRENT.with(|c| CurrentReset {
        prev: c.borrow_mut().replace(tokens),
    })
}

fn default_parallelism() -> usize {
    thread::available_parallelism().map_or(1, usize::from)
}

/// Token pool used by the free [`join`] outside any [`ThreadPool::install`]:
/// sized to the host's parallelism, like rayon's global pool.
fn global_tokens() -> Arc<Tokens> {
    static GLOBAL: OnceLock<Arc<Tokens>> = OnceLock::new();
    Arc::clone(GLOBAL.get_or_init(|| Tokens::new(default_parallelism().saturating_sub(1))))
}

fn current_tokens() -> Arc<Tokens> {
    CURRENT
        .with(|c| c.borrow().clone())
        .unwrap_or_else(global_tokens)
}

/// Run `a` on the calling thread; run `b` on an extra processor if one is
/// free and inline (after `a`) otherwise.  Returns when both are done.
fn join_with<A, B, RA, RB>(tokens: &Arc<Tokens>, a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if let Some(permit) = tokens.try_acquire() {
        let child_tokens = Arc::clone(tokens);
        thread::scope(|s| {
            let handle = s.spawn(move || {
                let _permit = permit;
                let _reset = set_current(child_tokens);
                b()
            });
            let ra = a();
            match handle.join() {
                Ok(rb) => (ra, rb),
                Err(payload) => resume_unwind(payload),
            }
        })
    } else {
        (a(), b())
    }
}

/// Execute `oper_a` and `oper_b`, potentially in parallel, and return both
/// results — the shim of `rayon::join`.
///
/// Uses the pool `install`ed on the current thread, or a host-sized global
/// pool otherwise.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    join_with(&current_tokens(), oper_a, oper_b)
}

/// A bounded fork/join pool — the shim of `rayon::ThreadPool`.
pub struct ThreadPool {
    threads: usize,
    tokens: Arc<Tokens>,
}

impl ThreadPool {
    /// Number of threads this pool was built for.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Run two closures, potentially in parallel on this pool; see [`join`].
    pub fn join<A, B, RA, RB>(&self, oper_a: A, oper_b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        join_with(&self.tokens, oper_a, oper_b)
    }

    /// Run `op` with this pool as the current pool of the calling thread, so
    /// nested calls to the free [`join`] are bounded by this pool.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        let _reset = set_current(Arc::clone(&self.tokens));
        op()
    }

    /// Open a scope on the calling thread in which tasks can be spawned; the
    /// scope returns only after every spawned task has finished.
    pub fn in_place_scope<'scope, OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce(&Scope<'scope>) -> R,
    {
        scope_with_tokens(Arc::clone(&self.tokens), op)
    }
}

impl fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}

/// Builder for [`ThreadPool`] — the shim of `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Start building a pool.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Use exactly `num_threads` threads (0 means the host's parallelism).
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Accepted for API compatibility; this shim spawns anonymous threads
    /// per forked task, so the name function is not applied.
    pub fn thread_name<F>(self, _name_fn: F) -> Self
    where
        F: FnMut(usize) -> String + 'static,
    {
        self
    }

    /// Build the pool.  Never fails in this shim; the `Result` mirrors the
    /// real crate's signature.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            default_parallelism()
        } else {
            self.num_threads
        };
        Ok(ThreadPool {
            threads,
            tokens: Tokens::new(threads - 1),
        })
    }
}

impl fmt::Debug for ThreadPoolBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadPoolBuilder")
            .field("num_threads", &self.num_threads)
            .finish_non_exhaustive()
    }
}

/// Error building a [`ThreadPool`]; never produced by this shim.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Shared state of one scope: its token pool, the OS threads it has forked,
/// and the first panic payload observed in a spawned task.
struct ScopeState {
    tokens: Arc<Tokens>,
    handles: Mutex<Vec<thread::JoinHandle<()>>>,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl ScopeState {
    fn stash_panic(&self, payload: Box<dyn Any + Send>) {
        let mut slot = self.panic.lock().unwrap_or_else(|p| p.into_inner());
        slot.get_or_insert(payload);
    }

    /// Join every forked thread, including ones forked while joining.
    fn join_all(&self) {
        loop {
            let handle = {
                let mut handles = self.handles.lock().unwrap_or_else(|p| p.into_inner());
                handles.pop()
            };
            match handle {
                // Task panics are stashed via `stash_panic`, so `join`
                // itself only fails if the runtime is already broken.
                Some(h) => drop(h.join()),
                None => break,
            }
        }
    }
}

/// A scope in which tasks borrowing `'scope` data can be spawned — the shim
/// of `rayon::Scope`.
pub struct Scope<'scope> {
    state: Arc<ScopeState>,
    // Invariant in 'scope, like the real crate.
    _marker: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Spawn a task: on a fresh OS thread if an extra processor permit is
    /// free, inline (immediately, in creation order) otherwise.  The
    /// enclosing scope waits for the task; a panic in the task propagates
    /// from the scope entry point.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        if let Some(permit) = self.state.tokens.try_acquire() {
            let task: Box<dyn FnOnce(&Scope<'scope>) + Send + 'scope> = Box::new(f);
            // SAFETY: every spawned thread is joined in `scope_with_tokens`
            // before the scope entry point returns (even when the scope body
            // panics), so the task cannot outlive the `'scope` data it
            // borrows.  `Scope<'scope>` and `Scope<'static>` differ only in
            // a PhantomData lifetime and are layout-identical.
            #[allow(unsafe_code)]
            let task: Box<dyn FnOnce(&Scope<'static>) + Send + 'static> =
                unsafe { mem::transmute(task) };
            let state = Arc::clone(&self.state);
            let handle = thread::spawn(move || {
                let _permit = permit;
                let _reset = set_current(Arc::clone(&state.tokens));
                let scope = Scope::<'static> {
                    state: Arc::clone(&state),
                    _marker: PhantomData,
                };
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| task(&scope))) {
                    state.stash_panic(payload);
                }
            });
            let mut handles = self.state.handles.lock().unwrap_or_else(|p| p.into_inner());
            handles.push(handle);
        } else if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(self))) {
            // Inline like the thread path: defer the panic to the scope end
            // so sibling tasks still run and threads are still joined.
            self.state.stash_panic(payload);
        }
    }
}

impl fmt::Debug for Scope<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scope").finish_non_exhaustive()
    }
}

fn scope_with_tokens<'scope, OP, R>(tokens: Arc<Tokens>, op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R,
{
    let scope = Scope {
        state: Arc::new(ScopeState {
            tokens,
            handles: Mutex::new(Vec::new()),
            panic: Mutex::new(None),
        }),
        _marker: PhantomData,
    };
    let result = catch_unwind(AssertUnwindSafe(|| op(&scope)));
    // Always join before unwinding: spawned tasks may borrow 'scope data.
    scope.state.join_all();
    let stashed = {
        let mut slot = scope.state.panic.lock().unwrap_or_else(|p| p.into_inner());
        slot.take()
    };
    match result {
        Err(payload) => resume_unwind(payload),
        Ok(r) => {
            if let Some(payload) = stashed {
                resume_unwind(payload);
            }
            r
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn free_join_returns_both_results() {
        let (a, b) = join(|| 1 + 1, || "abc".len());
        assert_eq!((a, b), (2, 3));
    }

    #[test]
    fn pool_join_recursive_sum() {
        fn sum(pool: &ThreadPool, data: &[u64]) -> u64 {
            if data.len() <= 4 {
                return data.iter().sum();
            }
            let (lo, hi) = data.split_at(data.len() / 2);
            let (a, b) = pool.join(|| sum(pool, lo), || sum(pool, hi));
            a + b
        }
        let data: Vec<u64> = (0..1024).collect();
        for p in [1, 2, 4] {
            let pool = ThreadPoolBuilder::new().num_threads(p).build().unwrap();
            assert_eq!(sum(&pool, &data), 1023 * 1024 / 2, "p = {p}");
        }
    }

    #[test]
    fn pool_join_propagates_child_panic_and_stays_usable() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.join(|| 1, || -> i32 { panic!("boom") });
        }));
        assert!(result.is_err());
        assert_eq!(pool.join(|| 1, || 2), (1, 2));
    }

    #[test]
    fn scope_runs_all_tasks_and_borrows_stack() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let counter = AtomicUsize::new(0);
        pool.in_place_scope(|s| {
            for _ in 0..50 {
                let counter = &counter;
                s.spawn(move |_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn scope_tasks_can_spawn_nested_tasks() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let counter = AtomicUsize::new(0);
        pool.in_place_scope(|s| {
            let counter = &counter;
            s.spawn(move |inner| {
                counter.fetch_add(1, Ordering::SeqCst);
                inner.spawn(move |_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            });
        });
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn single_thread_scope_runs_inline_in_creation_order() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let order = Mutex::new(Vec::new());
        pool.in_place_scope(|s| {
            for i in 0..10 {
                let order = &order;
                s.spawn(move |_| order.lock().unwrap().push(i));
            }
        });
        assert_eq!(*order.lock().unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn scope_task_panic_propagates_after_joining_all() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let ran = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.in_place_scope(|s| {
                s.spawn(|_| panic!("task failed"));
                let ran = &ran;
                s.spawn(move |_| {
                    ran.fetch_add(1, Ordering::SeqCst);
                });
            });
        }));
        assert!(result.is_err());
        assert_eq!(ran.load(Ordering::SeqCst), 1, "sibling task still ran");
    }

    #[test]
    fn install_bounds_the_free_join() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let total = pool.install(|| {
            let data: Vec<u64> = (0..256).collect();
            fn sum(data: &[u64]) -> u64 {
                if data.len() <= 8 {
                    return data.iter().sum();
                }
                let (lo, hi) = data.split_at(data.len() / 2);
                let (a, b) = join(|| sum(lo), || sum(hi));
                a + b
            }
            sum(&data)
        });
        assert_eq!(total, 255 * 256 / 2);
    }
}
