//! Minimal, API-compatible shim for the subset of [`rayon`] this workspace
//! uses — [`ThreadPool`] (via [`ThreadPoolBuilder`]) with [`ThreadPool::join`],
//! [`ThreadPool::install`] and [`ThreadPool::in_place_scope`], plus the free
//! [`join`] function — implemented as a genuine bounded **work-stealing**
//! runtime (the build container has no network access, so the real crate
//! cannot be fetched).
//!
//! # Scheduling rule
//!
//! A pool owns exactly `num_threads` persistent worker threads, created once
//! at [`ThreadPoolBuilder::build`] time and reused for every task (no OS
//! thread is ever spawned per fork).  Each worker owns a deque of pending
//! tasks (a plain `Mutex<VecDeque<_>>` — std-only, no lock-free dependency),
//! and the pool keeps one shared injector queue for work arriving from
//! threads outside the pool:
//!
//! * **fork** — `join(a, b)` on a worker pushes `b` onto the *newest* end of
//!   the worker's own deque as a *pending* task and runs `a` directly.  The
//!   pending task is not committed to anyone: it stays available until a
//!   processor actually executes it.
//! * **steal** — an idle worker takes the *oldest* pending task first: the
//!   front of the injector, then the front of another worker's deque.  This
//!   is the LoPRAM §3.1 rule that pending pal-threads are activated "in a
//!   manner consistent with order of creation as resources become
//!   available".
//! * **join, help-first** — when the forking worker finishes `a` it pops `b`
//!   back from its own deque and runs it inline if no one has taken it; if
//!   `b` was stolen, the worker does not park: it executes other pending
//!   tasks while waiting for `b`'s completion latch (so a blocked parent is
//!   still a useful processor).
//!
//! Calls from threads that are not pool workers (`install`, `join`, the end
//! of `in_place_scope`) ship the work into the pool and block the calling
//! thread; the `num_threads` workers are therefore the *only* processors,
//! which is what lets `PalPool` in `lopram-core` model a LoPRAM with exactly
//! `p` processors.
//!
//! The pool counts every completed task in [`PoolStats`]: `stolen` (taken
//! from another worker's deque — the task migrated to a processor that
//! freed up), `inlined` (popped back and executed by the thread that
//! created it), and `injected` (shipped in from a non-worker thread, whose
//! creator is not a processor, so neither label applies).  `lopram-core`
//! forwards these to its `RunMetrics` so experiments can observe the
//! paper's Figure 2 cutoff on the real pool.
//!
//! Guarantees relied on by the workspace:
//!
//! * at most `num_threads` tasks of a pool execute concurrently;
//! * `join`/scopes block until every forked task finished, so borrowing the
//!   enclosing stack is safe;
//! * panics in forked tasks propagate to the forking caller;
//! * a pool with one thread degenerates to sequential execution in creation
//!   order.
//!
//! [`rayon`]: https://docs.rs/rayon

use std::any::Any;
use std::cell::{RefCell, UnsafeCell};
use std::collections::VecDeque;
use std::fmt;
use std::marker::PhantomData;
use std::mem;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread;
use std::time::Duration;

/// How long an idle worker (or a helping join waiter) sleeps before
/// re-polling the deques when no wake-up notification arrives.  All sleeps
/// are bounded by this, so a missed notification costs latency, never a
/// deadlock.
const IDLE_POLL: Duration = Duration::from_micros(500);

/// Lock a mutex, ignoring poisoning (tasks catch their own panics, but be
/// defensive: a poisoned queue is still a valid queue).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

// ---------------------------------------------------------------------------
// Latch: one-shot completion flag a waiter can block on.
// ---------------------------------------------------------------------------

/// A one-shot completion latch (mutex + condvar; no busy spin for external
/// waiters).
#[derive(Default)]
struct Latch {
    done: Mutex<bool>,
    cvar: Condvar,
}

impl Latch {
    fn probe(&self) -> bool {
        *lock(&self.done)
    }

    /// Set the latch.  This must be the setter's final access to any memory
    /// owned by the waiter: once the waiter observes `done`, it may pop the
    /// stack frame holding the job.
    fn set(&self) {
        *lock(&self.done) = true;
        self.cvar.notify_all();
    }

    /// Block until the latch is set (used by non-worker threads, which must
    /// not execute pool work).
    fn wait(&self) {
        let mut guard = lock(&self.done);
        while !*guard {
            guard = self
                .cvar
                .wait(guard)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Block until the latch is set or `dur` elapses (used by helping
    /// workers, which must also keep an eye on the deques).
    fn wait_timeout(&self, dur: Duration) {
        let guard = lock(&self.done);
        if !*guard {
            let _ = self
                .cvar
                .wait_timeout(guard, dur)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }
}

// ---------------------------------------------------------------------------
// Jobs: type-erased pending tasks living in the deques.
// ---------------------------------------------------------------------------

/// A type-erased pointer to a pending task.
///
/// `data` points either at a [`StackJob`] on the creator's stack (kept alive
/// because the creator blocks until the job's latch is set) or at a leaked
/// [`HeapJob`] box (reclaimed by `execute_heap`).
struct JobRef {
    data: *const (),
    execute_fn: unsafe fn(*const ()),
    /// Whether this job is a pal-thread for [`PoolStats`] accounting.
    /// Internal wrappers (e.g. the `install` trampoline) are not counted.
    counted: bool,
}

// SAFETY: a JobRef is only ever executed once, and the pointed-to job is
// kept alive until its completion latch is set (StackJob) or owns itself
// (HeapJob).  The closures inside are `Send` by the public API bounds.
#[allow(unsafe_code)]
unsafe impl Send for JobRef {}

/// A fork/join or `install` task whose closure and result slot live on the
/// creating thread's stack.  The creator never returns before the latch is
/// set, so the raw pointer handed out via [`StackJob::as_job_ref`] stays
/// valid for the job's whole life.
struct StackJob<F, R> {
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<thread::Result<R>>>,
    latch: Arc<Latch>,
}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R,
{
    fn new(func: F, latch: Arc<Latch>) -> Self {
        StackJob {
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(None),
            latch,
        }
    }

    fn as_job_ref(&self, counted: bool) -> JobRef {
        JobRef {
            data: (self as *const Self).cast::<()>(),
            execute_fn: execute_stack::<F, R>,
            counted,
        }
    }

    /// Take the result after the latch has been set (or after executing the
    /// job on this very thread).
    ///
    /// # Safety
    /// Must only be called once, after the job ran to completion; the latch
    /// mutex provides the necessary happens-before edge.
    #[allow(unsafe_code)]
    unsafe fn take_result(&self) -> thread::Result<R> {
        (*self.result.get())
            .take()
            .expect("job executed exactly once")
    }
}

/// Execute a [`StackJob`].  Clones the latch out of the job first so that
/// setting it is the executor's last touch of the creator's stack memory.
#[allow(unsafe_code)]
unsafe fn execute_stack<F, R>(data: *const ())
where
    F: FnOnce() -> R,
{
    let job = &*data.cast::<StackJob<F, R>>();
    let latch = Arc::clone(&job.latch);
    let func = (*job.func.get()).take().expect("job executed exactly once");
    let result = catch_unwind(AssertUnwindSafe(func));
    *job.result.get() = Some(result);
    // After `set` the creator may deallocate the job; touch nothing of it.
    latch.set();
}

/// A scope task: boxed closure plus the shared scope state it reports to.
struct HeapJob {
    task: Box<dyn FnOnce(&Scope<'static>) + Send>,
    state: Arc<ScopeState>,
}

/// Execute (and reclaim) a leaked [`HeapJob`].
#[allow(unsafe_code)]
unsafe fn execute_heap(data: *const ()) {
    let job = Box::from_raw(data.cast::<HeapJob>().cast_mut());
    let state = Arc::clone(&job.state);
    let task = job.task;
    let scope = Scope::<'static> {
        state: Arc::clone(&state),
        _marker: PhantomData,
    };
    if let Err(payload) = catch_unwind(AssertUnwindSafe(move || task(&scope))) {
        state.stash_panic(payload);
    }
    state.task_finished();
}

// ---------------------------------------------------------------------------
// Registry: the shared state of one pool — deques, injector, workers.
// ---------------------------------------------------------------------------

/// Where a pending task was taken from, deciding its [`PoolStats`]
/// attribution.
#[derive(Clone, Copy)]
enum TaskSource {
    /// Popped back off the executing worker's own deque: the fork was never
    /// taken by anyone else and runs inline in its creator.
    Own,
    /// Taken from another worker's deque: a genuine steal — the task
    /// migrated to a processor that freed up after its creation.
    Theft,
    /// Taken from the shared injector: work shipped into the pool by a
    /// non-worker thread.  The creator is not a processor, so this is
    /// neither an inline execution nor a worker-to-worker migration.
    Injector,
}

struct Registry {
    threads: usize,
    /// One pending-task deque per worker.  The owner pushes and pops at the
    /// back (newest); thieves take from the front (oldest first).
    deques: Vec<Mutex<VecDeque<JobRef>>>,
    /// Work arriving from threads outside the pool; drained oldest-first.
    injector: Mutex<VecDeque<JobRef>>,
    idle_lock: Mutex<()>,
    idle_cvar: Condvar,
    terminate: AtomicBool,
    /// Tasks stolen from another worker's deque (migrations).
    stolen: AtomicU64,
    /// Tasks popped back and executed by the thread that created them.
    inlined: AtomicU64,
    /// Tasks taken from the injector (created outside the pool).
    injected: AtomicU64,
}

thread_local! {
    /// The registry this thread serves as a worker of, if any.
    static WORKER: RefCell<Option<(Arc<Registry>, usize)>> = const { RefCell::new(None) };
}

/// Index of the current thread within `registry`, if it is one of its
/// workers.
fn current_worker_in(registry: &Arc<Registry>) -> Option<usize> {
    WORKER.with(|w| {
        w.borrow()
            .as_ref()
            .and_then(|(r, i)| Arc::ptr_eq(r, registry).then_some(*i))
    })
}

impl Registry {
    fn new(threads: usize) -> Arc<Self> {
        Arc::new(Registry {
            threads,
            deques: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            idle_lock: Mutex::new(()),
            idle_cvar: Condvar::new(),
            terminate: AtomicBool::new(false),
            stolen: AtomicU64::new(0),
            inlined: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        })
    }

    /// Spawn the persistent workers.  Returns their handles so the owning
    /// [`ThreadPool`] can join them on drop (the global pool leaks its
    /// workers instead, like the real crate).
    fn spawn_workers(
        self: &Arc<Self>,
        mut name_fn: Box<dyn FnMut(usize) -> String>,
    ) -> Vec<thread::JoinHandle<()>> {
        (0..self.threads)
            .map(|index| {
                let registry = Arc::clone(self);
                thread::Builder::new()
                    .name(name_fn(index))
                    .spawn(move || worker_main(registry, index))
                    .expect("failed to spawn pool worker thread")
            })
            .collect()
    }

    fn notify(&self) {
        // Waiters only ever sleep with a bounded timeout, so notifying
        // without holding `idle_lock` can at worst delay them by IDLE_POLL.
        self.idle_cvar.notify_all();
    }

    fn push_local(&self, index: usize, job: JobRef) {
        lock(&self.deques[index]).push_back(job);
        self.notify();
    }

    fn inject(&self, job: JobRef) {
        lock(&self.injector).push_back(job);
        self.notify();
    }

    /// Take one pending task.  Priority: own deque back (newest — the
    /// cache-warm fast path for popping one's own fork back), then the
    /// injector front, then the other workers' fronts — i.e. thieves always
    /// take the **oldest** pending task of a victim first.
    ///
    /// Returns the job and where it came from, which decides its
    /// [`PoolStats`] attribution.
    fn find_job(&self, index: usize) -> Option<(JobRef, TaskSource)> {
        if let Some(job) = lock(&self.deques[index]).pop_back() {
            return Some((job, TaskSource::Own));
        }
        if let Some(job) = lock(&self.injector).pop_front() {
            return Some((job, TaskSource::Injector));
        }
        for offset in 1..self.threads {
            let victim = (index + offset) % self.threads;
            if let Some(job) = lock(&self.deques[victim]).pop_front() {
                return Some((job, TaskSource::Theft));
            }
        }
        None
    }

    /// Pop the job at `data` back off this worker's own deque, if it is
    /// still there (i.e. no other processor took it in the meantime).
    ///
    /// Only the owner pushes to its deque, and it only pushes jobs whose
    /// stack frames are still live, so a back-of-deque pointer match is an
    /// identity match.
    fn pop_local_if(&self, index: usize, data: *const ()) -> Option<JobRef> {
        let mut deque = lock(&self.deques[index]);
        if deque.back().is_some_and(|job| std::ptr::eq(job.data, data)) {
            deque.pop_back()
        } else {
            None
        }
    }

    /// Execute a job, attributing it in the pool statistics.
    ///
    /// Never unwinds: every job type catches its own panic and reports it
    /// through its latch or scope, so helping loops survive task failures.
    #[allow(unsafe_code)]
    fn execute(&self, job: JobRef, source: TaskSource) {
        if job.counted {
            let counter = match source {
                TaskSource::Own => &self.inlined,
                TaskSource::Theft => &self.stolen,
                TaskSource::Injector => &self.injected,
            };
            counter.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { (job.execute_fn)(job.data) }
    }

    /// Help-first wait: execute pending tasks until `latch` is set.  This is
    /// what a worker blocked on a stolen fork does instead of parking.
    fn wait_help(&self, index: usize, latch: &Latch) {
        loop {
            if latch.probe() {
                return;
            }
            match self.find_job(index) {
                Some((job, source)) => self.execute(job, source),
                None => latch.wait_timeout(IDLE_POLL),
            }
        }
    }
}

fn worker_main(registry: Arc<Registry>, index: usize) {
    WORKER.with(|w| *w.borrow_mut() = Some((Arc::clone(&registry), index)));
    while !registry.terminate.load(Ordering::Acquire) {
        match registry.find_job(index) {
            Some((job, source)) => registry.execute(job, source),
            None => {
                let guard = lock(&registry.idle_lock);
                let _ = registry
                    .idle_cvar
                    .wait_timeout(guard, IDLE_POLL)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        }
    }
}

// ---------------------------------------------------------------------------
// join
// ---------------------------------------------------------------------------

/// The worker-side join: fork `b` as a pending task, run `a`, then take `b`
/// back (inline) or help until the thief finishes it.
fn join_worker<A, B, RA, RB>(
    registry: &Arc<Registry>,
    index: usize,
    oper_a: A,
    oper_b: B,
) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let latch = Arc::new(Latch::default());
    let job_b = StackJob::new(oper_b, Arc::clone(&latch));
    let job_ref = job_b.as_job_ref(true);
    let data = job_ref.data;
    registry.push_local(index, job_ref);

    let result_a = catch_unwind(AssertUnwindSafe(oper_a));

    match registry.pop_local_if(index, data) {
        // Nobody freed up in time: the creating processor runs b itself.
        Some(job) => registry.execute(job, TaskSource::Own),
        // b migrated to (or is executing on) another processor: help with
        // other pending work until it completes.  Even if `a` panicked we
        // must wait — b may borrow the enclosing stack.
        None => registry.wait_help(index, &latch),
    }

    // SAFETY: b has run to completion on some thread (inline above, or latch
    // observed set), and the latch mutex orders its result write before us.
    #[allow(unsafe_code)]
    let result_b = unsafe { job_b.take_result() };

    match (result_a, result_b) {
        (Ok(ra), Ok(rb)) => (ra, rb),
        (Err(payload), _) => resume_unwind(payload),
        (_, Err(payload)) => resume_unwind(payload),
    }
}

/// Ship `op` into the pool and block until it completes, or run it directly
/// when the calling thread already is a worker of this pool.
fn install_in<OP, R>(registry: &Arc<Registry>, op: OP) -> R
where
    OP: FnOnce() -> R + Send,
    R: Send,
{
    if current_worker_in(registry).is_some() {
        return op();
    }
    let latch = Arc::new(Latch::default());
    let job = StackJob::new(op, Arc::clone(&latch));
    // The trampoline itself is not a pal-thread; don't count it.
    registry.inject(job.as_job_ref(false));
    // Non-workers are not processors: park instead of stealing.
    latch.wait();
    // SAFETY: latch set ⇒ the job ran and wrote its result.
    #[allow(unsafe_code)]
    match unsafe { job.take_result() } {
        Ok(result) => result,
        Err(payload) => resume_unwind(payload),
    }
}

fn join_in<A, B, RA, RB>(registry: &Arc<Registry>, oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    match current_worker_in(registry) {
        Some(index) => join_worker(registry, index, oper_a, oper_b),
        None => install_in(registry, move || {
            let index =
                current_worker_in(registry).expect("install trampoline runs on a pool worker");
            join_worker(registry, index, oper_a, oper_b)
        }),
    }
}

/// The global registry backing the free [`join`] when called outside any
/// pool, sized to the host's parallelism like rayon's global pool.  Its
/// workers are leaked (never joined), again like the real crate.
fn global_registry() -> &'static Arc<Registry> {
    static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let registry = Registry::new(default_parallelism());
        drop(registry.spawn_workers(Box::new(|i| format!("rayon-global-{i}"))));
        registry
    })
}

fn default_parallelism() -> usize {
    thread::available_parallelism().map_or(1, usize::from)
}

/// Execute `oper_a` and `oper_b`, potentially in parallel, and return both
/// results — the shim of `rayon::join`.
///
/// On a pool worker thread this forks within that worker's pool; elsewhere
/// it uses a host-sized global pool.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let current = WORKER.with(|w| w.borrow().clone());
    match current {
        Some((registry, index)) => join_worker(&registry, index, oper_a, oper_b),
        None => join_in(global_registry(), oper_a, oper_b),
    }
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

/// Scheduling counters of a [`ThreadPool`]; see [`ThreadPool::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Pending tasks taken from another worker's deque — each is one
    /// successful steal, i.e. one pal-thread that migrated to a processor
    /// that freed up after the task's creation.
    pub stolen: u64,
    /// Pending tasks popped back and executed by the thread that created
    /// them (the fork was never taken by anyone else).
    pub inlined: u64,
    /// Pending tasks taken from the shared injector: created by a
    /// non-worker thread and executed by some pool worker.  Not a
    /// migration (the creator was never a processor), so these are kept
    /// apart from `stolen`.
    pub injected: u64,
}

/// A bounded work-stealing fork/join pool — the shim of `rayon::ThreadPool`.
pub struct ThreadPool {
    registry: Arc<Registry>,
    handles: Vec<thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Number of worker threads this pool was built with.
    pub fn current_num_threads(&self) -> usize {
        self.registry.threads
    }

    /// Snapshot of this pool's stolen/inlined/injected task counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            stolen: self.registry.stolen.load(Ordering::Relaxed),
            inlined: self.registry.inlined.load(Ordering::Relaxed),
            injected: self.registry.injected.load(Ordering::Relaxed),
        }
    }

    /// Run two closures, potentially in parallel on this pool; see [`join`].
    ///
    /// Called from outside the pool this blocks the caller and runs both
    /// closures on pool workers; called from a worker it forks in place.
    pub fn join<A, B, RA, RB>(&self, oper_a: A, oper_b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        join_in(&self.registry, oper_a, oper_b)
    }

    /// Execute `op` within the pool: on a worker thread, with nested calls
    /// to the free [`join`] bounded by this pool.  Blocks the caller until
    /// `op` returns.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        install_in(&self.registry, op)
    }

    /// Open a scope on the calling thread in which tasks can be spawned
    /// onto this pool; the scope returns only after every spawned task has
    /// finished.
    pub fn in_place_scope<'scope, OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce(&Scope<'scope>) -> R,
    {
        scope_in(Arc::clone(&self.registry), op)
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Every public entry point waits for its tasks before returning, so
        // the deques are empty here; workers exit within one IDLE_POLL.
        self.registry.terminate.store(true, Ordering::Release);
        self.registry.notify();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.registry.threads)
            .finish_non_exhaustive()
    }
}

/// Builder for [`ThreadPool`] — the shim of `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
    thread_name: Option<Box<dyn FnMut(usize) -> String>>,
}

impl ThreadPoolBuilder {
    /// Start building a pool.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Use exactly `num_threads` worker threads (0 means the host's
    /// parallelism).
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Name the persistent worker threads (applied at build time; workers
    /// are created once, not per fork).
    pub fn thread_name<F>(mut self, name_fn: F) -> Self
    where
        F: FnMut(usize) -> String + 'static,
    {
        self.thread_name = Some(Box::new(name_fn));
        self
    }

    /// Build the pool, spawning its persistent workers.  Never fails in
    /// this shim; the `Result` mirrors the real crate's signature.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            default_parallelism()
        } else {
            self.num_threads
        };
        let name_fn = self
            .thread_name
            .unwrap_or_else(|| Box::new(|i| format!("rayon-worker-{i}")));
        let registry = Registry::new(threads);
        let handles = registry.spawn_workers(name_fn);
        Ok(ThreadPool { registry, handles })
    }
}

impl fmt::Debug for ThreadPoolBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadPoolBuilder")
            .field("num_threads", &self.num_threads)
            .finish_non_exhaustive()
    }
}

/// Error building a [`ThreadPool`]; never produced by this shim.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

// ---------------------------------------------------------------------------
// Scope
// ---------------------------------------------------------------------------

/// Shared state of one scope: the pool it spawns into, the count of
/// unfinished tasks (plus one guard for the scope body), and the first panic
/// observed in a spawned task.
struct ScopeState {
    registry: Arc<Registry>,
    pending: AtomicUsize,
    latch: Latch,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl ScopeState {
    fn stash_panic(&self, payload: Box<dyn Any + Send>) {
        lock(&self.panic).get_or_insert(payload);
    }

    fn task_finished(&self) {
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.latch.set();
        }
    }
}

/// A scope in which tasks borrowing `'scope` data can be spawned — the shim
/// of `rayon::Scope`.
pub struct Scope<'scope> {
    state: Arc<ScopeState>,
    // Invariant in 'scope, like the real crate.
    _marker: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Spawn a pending task into the pool: onto this worker's own deque when
    /// called from a pool worker, onto the shared injector otherwise.  The
    /// task stays pending until a processor picks it up — idle processors
    /// take pending tasks oldest-first, while a creator draining its own
    /// leftovers at scope end takes the newest first (LIFO).  The enclosing
    /// scope waits for it, and a panic in it propagates from the scope
    /// entry point after all sibling tasks finished.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.state.pending.fetch_add(1, Ordering::AcqRel);
        let task: Box<dyn FnOnce(&Scope<'scope>) + Send + 'scope> = Box::new(f);
        // SAFETY: the scope entry point waits for `pending` to reach zero
        // before returning (even when the scope body panics), so the task
        // cannot outlive the `'scope` data it borrows.  `Scope<'scope>` and
        // `Scope<'static>` differ only in a PhantomData lifetime.
        #[allow(unsafe_code)]
        let task: Box<dyn FnOnce(&Scope<'static>) + Send + 'static> =
            unsafe { mem::transmute(task) };
        let job = Box::new(HeapJob {
            task,
            state: Arc::clone(&self.state),
        });
        let job_ref = JobRef {
            data: (Box::into_raw(job) as *const HeapJob).cast::<()>(),
            execute_fn: execute_heap,
            counted: true,
        };
        match current_worker_in(&self.state.registry) {
            Some(index) => self.state.registry.push_local(index, job_ref),
            None => self.state.registry.inject(job_ref),
        }
    }
}

impl fmt::Debug for Scope<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scope").finish_non_exhaustive()
    }
}

fn scope_in<'scope, OP, R>(registry: Arc<Registry>, op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R,
{
    let state = Arc::new(ScopeState {
        registry,
        // One guard for the scope body itself, so the latch cannot fire
        // while the body is still spawning.
        pending: AtomicUsize::new(1),
        latch: Latch::default(),
        panic: Mutex::new(None),
    });
    let scope = Scope {
        state: Arc::clone(&state),
        _marker: PhantomData,
    };
    let result = catch_unwind(AssertUnwindSafe(|| op(&scope)));
    // Body done (or unwound): release its guard, then wait for every
    // spawned task — they may borrow 'scope data, so this must happen even
    // when the body panicked.
    state.task_finished();
    match current_worker_in(&state.registry) {
        Some(index) => state.registry.wait_help(index, &state.latch),
        None => state.latch.wait(),
    }
    let stashed = lock(&state.panic).take();
    match result {
        Err(payload) => resume_unwind(payload),
        Ok(value) => {
            if let Some(payload) = stashed {
                resume_unwind(payload);
            }
            value
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::time::Instant;

    #[test]
    fn free_join_returns_both_results() {
        let (a, b) = join(|| 1 + 1, || "abc".len());
        assert_eq!((a, b), (2, 3));
    }

    #[test]
    fn pool_join_recursive_sum() {
        fn sum(pool: &ThreadPool, data: &[u64]) -> u64 {
            if data.len() <= 4 {
                return data.iter().sum();
            }
            let (lo, hi) = data.split_at(data.len() / 2);
            let (a, b) = pool.join(|| sum(pool, lo), || sum(pool, hi));
            a + b
        }
        let data: Vec<u64> = (0..1024).collect();
        for p in [1, 2, 4] {
            let pool = ThreadPoolBuilder::new().num_threads(p).build().unwrap();
            assert_eq!(sum(&pool, &data), 1023 * 1024 / 2, "p = {p}");
        }
    }

    #[test]
    fn workers_are_created_once_and_reused() {
        // The acceptance property for the runtime rewrite: many forks, yet
        // every closure runs on one of the p persistent workers — no
        // per-fork OS thread is ever spawned.
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let ids = Mutex::new(HashSet::new());
        fn fanout(pool: &ThreadPool, depth: usize, ids: &Mutex<HashSet<thread::ThreadId>>) {
            ids.lock().unwrap().insert(thread::current().id());
            if depth == 0 {
                return;
            }
            pool.join(
                || fanout(pool, depth - 1, ids),
                || fanout(pool, depth - 1, ids),
            );
        }
        // Run entirely inside the pool so only worker threads are recorded
        // (the external caller parks; it is not a processor).
        pool.install(|| fanout(&pool, 7, &ids)); // 255 forks
        let distinct = ids.lock().unwrap().len();
        assert!(
            distinct <= 3,
            "{distinct} distinct threads executed tasks of a 3-worker pool"
        );
    }

    #[test]
    fn worker_threads_carry_the_builder_name() {
        let pool = ThreadPoolBuilder::new()
            .num_threads(2)
            .thread_name(|i| format!("shim-test-{i}"))
            .build()
            .unwrap();
        let name = pool.install(|| thread::current().name().map(str::to_owned));
        assert!(name.unwrap().starts_with("shim-test-"));
    }

    #[test]
    fn idle_worker_steals_pending_fork() {
        // p = 2: the forking worker blocks inside `a` until the other worker
        // has stolen and executed the pending `b` — the migration property.
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let released = AtomicBool::new(false);
        pool.join(
            || {
                let start = Instant::now();
                while !released.load(Ordering::Acquire) {
                    assert!(
                        start.elapsed() < Duration::from_secs(10),
                        "pending fork was never stolen by the idle worker"
                    );
                    thread::sleep(Duration::from_millis(1));
                }
            },
            || released.store(true, Ordering::Release),
        );
        assert!(pool.stats().stolen >= 1);
    }

    #[test]
    fn stats_split_between_stolen_and_inlined() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        pool.join(|| (), || ());
        pool.join(|| (), || ());
        let stats = pool.stats();
        // One worker: forks are always popped back by their creator.
        assert_eq!(
            stats,
            PoolStats {
                stolen: 0,
                inlined: 2,
                injected: 0
            }
        );
    }

    #[test]
    fn external_scope_spawns_count_as_injected_not_stolen() {
        // Regression: a one-worker pool cannot migrate anything, so scope
        // tasks shipped in from the outside must not be attributed as
        // steals (they are `injected`: their creator is not a processor).
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let counter = AtomicUsize::new(0);
        pool.in_place_scope(|s| {
            for _ in 0..8 {
                let counter = &counter;
                s.spawn(move |_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 8);
        let stats = pool.stats();
        assert_eq!(
            stats,
            PoolStats {
                stolen: 0,
                inlined: 0,
                injected: 8
            }
        );
    }

    #[test]
    fn pool_join_propagates_child_panic_and_stays_usable() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.join(|| 1, || -> i32 { panic!("boom") });
        }));
        assert!(result.is_err());
        assert_eq!(pool.join(|| 1, || 2), (1, 2));
    }

    #[test]
    fn pool_join_propagates_panic_from_first_closure() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.join(|| -> i32 { panic!("boom a") }, || 2);
        }));
        assert!(result.is_err());
        assert_eq!(pool.join(|| 1, || 2), (1, 2));
    }

    #[test]
    fn scope_runs_all_tasks_and_borrows_stack() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let counter = AtomicUsize::new(0);
        pool.in_place_scope(|s| {
            for _ in 0..50 {
                let counter = &counter;
                s.spawn(move |_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn scope_tasks_can_spawn_nested_tasks() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let counter = AtomicUsize::new(0);
        pool.in_place_scope(|s| {
            let counter = &counter;
            s.spawn(move |inner| {
                counter.fetch_add(1, Ordering::SeqCst);
                inner.spawn(move |_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            });
        });
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn single_thread_scope_runs_inline_in_creation_order() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let order = Mutex::new(Vec::new());
        pool.in_place_scope(|s| {
            for i in 0..10 {
                let order = &order;
                s.spawn(move |_| order.lock().unwrap().push(i));
            }
        });
        assert_eq!(*order.lock().unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn scope_task_panic_propagates_after_joining_all() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let ran = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.in_place_scope(|s| {
                s.spawn(|_| panic!("task failed"));
                let ran = &ran;
                s.spawn(move |_| {
                    ran.fetch_add(1, Ordering::SeqCst);
                });
            });
        }));
        assert!(result.is_err());
        assert_eq!(ran.load(Ordering::SeqCst), 1, "sibling task still ran");
    }

    #[test]
    fn install_bounds_the_free_join() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let total = pool.install(|| {
            let data: Vec<u64> = (0..256).collect();
            fn sum(data: &[u64]) -> u64 {
                if data.len() <= 8 {
                    return data.iter().sum();
                }
                let (lo, hi) = data.split_at(data.len() / 2);
                let (a, b) = join(|| sum(lo), || sum(hi));
                a + b
            }
            sum(&data)
        });
        assert_eq!(total, 255 * 256 / 2);
    }

    #[test]
    fn dropping_a_pool_terminates_its_workers() {
        let pool = ThreadPoolBuilder::new()
            .num_threads(2)
            .thread_name(|i| format!("drop-test-{i}"))
            .build()
            .unwrap();
        assert_eq!(pool.join(|| 1, || 2), (1, 2));
        drop(pool); // joins both workers; hangs here would fail the test run
    }

    #[test]
    fn nested_pools_do_not_interfere() {
        let outer = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let inner = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let (a, b) = outer.join(|| inner.join(|| 1, || 2), || inner.install(|| 10));
        assert_eq!((a, b), ((1, 2), 10));
    }
}
