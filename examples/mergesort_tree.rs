//! Reproduce Figure 1 of the paper: the pal-thread execution tree of
//! mergesort for `n = 16` keys on `p = 4` processors, with the activation
//! time of every call and the state snapshot at `t = 6`.
//!
//! Run with `cargo run --example mergesort_tree` (optionally pass `n` and `p`).

use lopram::sim::{render_activation_tree, render_figure1_snapshot, TaskTree, TreeSimulator};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let p: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);

    let tree = TaskTree::mergesort_figure1(n);
    let result = TreeSimulator::new(&tree).run(p);

    println!("Pal-thread execution tree for mergesort, n = {n}, p = {p} (paper Figure 1)\n");
    print!("{}", render_activation_tree(&tree, &result));
    println!();
    print!("{}", render_figure1_snapshot(&tree, &result, 6));
    println!(
        "\nwall-clock steps T_p = {}, total work T_1 = {}, speedup {:.2}",
        result.makespan,
        result.total_work,
        result.speedup()
    );
}
