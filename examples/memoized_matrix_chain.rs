//! Parallel memoization (§4.5) on the matrix-chain ordering problem.
//!
//! Shows that the top-down memoized evaluation computes only the cells
//! reachable from the goal (the upper triangle of the interval table),
//! reports the probe/wait counters that measure memoization's overhead, and
//! checks the answer against the bottom-up schedulers.
//!
//! Run with `cargo run --release --example memoized_matrix_chain`.

use lopram::core::PalPool;
use lopram::dp::prelude::*;

fn main() {
    // A chain of 120 matrices with pseudo-random dimensions.
    let dims: Vec<u64> = (0..121).map(|i| ((i * 37) % 60 + 4) as u64).collect();
    let problem = MatrixChain::new(dims);
    let pool = PalPool::new(4).expect("4 processors");

    let bottom_up = solve_counter(&problem, &pool);
    let memo = solve_memoized(&problem, &pool);

    assert_eq!(bottom_up.goal, memo.goal);
    println!(
        "optimal matrix-chain cost for {} matrices: {} scalar multiplications",
        problem.matrices(),
        memo.goal
    );
    println!(
        "table cells: {} total, {} computed by memoization ({:.0}%)",
        problem.num_cells(),
        memo.computed_cells,
        100.0 * memo.computed_cells as f64 / problem.num_cells() as f64
    );
    println!(
        "memoization overhead: {} repeated probes, {} waits on in-progress cells",
        memo.repeated_probes, memo.waits
    );
    println!("(the paper bounds the concurrent-probe overhead by O(log p) per access, §4.5)");
}
