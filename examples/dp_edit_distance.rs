//! Parallel dynamic programming on the LoPRAM: edit distance (§4.2–§4.4).
//!
//! Builds the dependency DAG of the edit-distance table, prints the antichain
//! structure the paper's analysis relies on, and times the wavefront and
//! Algorithm 1 schedulers against the sequential bottom-up evaluation.
//!
//! Run with `cargo run --release --example dp_edit_distance`.

use std::time::Instant;

use lopram::core::{PalPool, SeqExecutor};
use lopram::dp::prelude::*;
use lopram::sim::simulate_dag_schedule;

fn main() {
    let n = 600;
    let a: Vec<u8> = (0..n).map(|i| (i * 7 % 4) as u8).collect();
    let b: Vec<u8> = (0..n).map(|i| (i * 13 % 4) as u8).collect();
    let problem = EditDistance::new(a, b);

    // The dependency DAG and its antichain (Mirsky) decomposition.
    let dag = dependency_dag(&problem, &SeqExecutor);
    println!(
        "edit distance {n}x{n}: {} cells, longest chain {}, max antichain width {}, avg width {:.1}",
        dag.work(),
        dag.longest_chain(),
        dag.max_width(),
        dag.average_width()
    );
    for p in [2usize, 4, 8] {
        println!(
            "  speedup bound with p = {p}: {:.2} (ideal greedy schedule: {:.2})",
            dag.max_speedup(p),
            simulate_dag_schedule(&dag, &vec![1; dag.len()], p).speedup()
        );
    }

    // Measure the schedulers.
    let start = Instant::now();
    let sequential = solve_sequential(&problem);
    let t_seq = start.elapsed();

    let pool = PalPool::for_input_size(problem.num_cells());
    println!(
        "\nrunning parallel schedulers on p = {} processors",
        pool.processors()
    );

    let start = Instant::now();
    let wavefront = solve_wavefront(&problem, &pool);
    let t_wave = start.elapsed();

    let start = Instant::now();
    let counter = solve_counter(&problem, &pool);
    let t_counter = start.elapsed();

    assert_eq!(sequential.goal, wavefront.goal);
    assert_eq!(sequential.goal, counter.goal);
    println!("edit distance = {}", sequential.goal);
    println!("sequential bottom-up : {t_seq:.2?}");
    println!(
        "wavefront (antichains): {t_wave:.2?}  (speedup {:.2})",
        t_seq.as_secs_f64() / t_wave.as_secs_f64()
    );
    println!(
        "Algorithm 1 (counters): {t_counter:.2?}  (speedup {:.2})",
        t_seq.as_secs_f64() / t_counter.as_secs_f64()
    );
}
