//! Level-synchronous frontier BFS on the pal-thread runtime.
//!
//! Demonstrates the irregular-workload path of the reproduction: a CSR
//! graph, the scan/pack-based parallel BFS of `lopram-graph`, its
//! sequential twin, and the `RunMetrics` counters that make the §3.1
//! schedule observable.
//!
//! ```sh
//! cargo run --release --example graph_bfs
//! ```

use lopram::core::{processors_for, PalPool, ProcessorPolicy};
use lopram::graph::prelude::*;

fn main() {
    // A seeded G(n, m) graph: same edges on every run.
    let n = 1 << 14;
    let g = gnm(n, 4 * n, 7);
    println!(
        "G(n, m): {} vertices, {} edges, max degree {}",
        g.vertices(),
        g.edges(),
        g.max_degree()
    );

    // The paper's processor policy: p = O(log n).
    let p = processors_for(n, ProcessorPolicy::LogN);
    let pool = PalPool::new(p).expect("log n >= 1");
    println!(
        "pool: p = {p} (LogN policy), cutoff depth = {:?}",
        pool.cutoff_depth()
    );

    let par = bfs_par(&g, &pool, 0);
    let seq = bfs_seq(&g, 0);
    assert_eq!(par, seq, "parallel BFS must equal its sequential twin");

    let reached = par.iter().filter(|&&d| d != UNREACHED).count();
    println!(
        "BFS from 0: {} of {} vertices reached in {} levels",
        reached,
        g.vertices(),
        levels(&par)
    );

    // Per-level frontier sizes: the shape the scan/pack pipeline processes.
    let mut sizes = vec![0usize; levels(&par) + 1];
    for &d in par.iter().filter(|&&d| d != UNREACHED) {
        sizes[d] += 1;
    }
    for (level, size) in sizes.iter().enumerate() {
        println!("  level {level:>2}: {size:>6} vertices");
    }

    // The schedule the runtime produced, fork by fork.
    let m = pool.metrics();
    println!(
        "schedule: spawned = {}, inlined = {}, steals = {}, elided = {} ({} forks total)",
        m.spawned(),
        m.inlined(),
        m.steals(),
        m.elided(),
        m.forks(),
    );

    // Connected components agree across all three algorithms too.
    let labels = components_label_prop(&g, &pool);
    assert_eq!(labels, components_seq(&g));
    assert_eq!(labels, components_hook(&g, &pool));
    println!("components: {}", component_count(&labels));
}
