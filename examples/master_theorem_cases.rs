//! The parallel Master theorem (Theorem 1) in action.
//!
//! For one algorithm per case — Karatsuba (case 1), mergesort (case 2) and
//! the dominant-merge cross-product sum (case 3, with and without parallel
//! merging) — this example measures the wall-clock speedup on a pal-thread
//! pool and prints it next to the speedup class the theorem promises.
//!
//! Run with `cargo run --release --example master_theorem_cases`.

use std::time::Instant;

use lopram::analysis::{parallel_master_bound, recurrence::catalog, MergeMode};
use lopram::core::PalPool;
use lopram::dnc::case3::{cross_product_sum, CrossMergeMode};
use lopram::dnc::karatsuba::karatsuba_mul;
use lopram::dnc::mergesort::merge_sort;

fn time<R>(mut f: impl FnMut() -> R) -> f64 {
    let start = Instant::now();
    std::hint::black_box(f());
    start.elapsed().as_secs_f64()
}

fn main() {
    let p = 4;
    let seq = PalPool::sequential();
    let pool = PalPool::new(p).expect("p processors");
    println!("Parallel Master theorem demonstration (p = {p})\n");

    // Case 1: Karatsuba, T(n) = 3T(n/2) + n.
    let a: Vec<i64> = (0..1 << 13).map(|i| (i % 97) as i64 - 48).collect();
    let b: Vec<i64> = (0..1 << 13).map(|i| (i % 89) as i64 - 44).collect();
    let t1 = time(|| karatsuba_mul(&seq, &a, &b));
    let tp = time(|| karatsuba_mul(&pool, &a, &b));
    let bound = parallel_master_bound(&catalog::karatsuba(), MergeMode::Sequential);
    println!(
        "case 1  karatsuba        speedup {:>5.2}   promised: {:?}",
        t1 / tp,
        bound.speedup
    );

    // Case 2: mergesort, T(n) = 2T(n/2) + n.
    let data: Vec<i64> = (0..1 << 20)
        .map(|i| (i * 2_654_435_761u64 as i64) % 1_000_003)
        .collect();
    let t1 = time(|| {
        let mut v = data.clone();
        merge_sort(&seq, &mut v);
        v
    });
    let tp = time(|| {
        let mut v = data.clone();
        merge_sort(&pool, &mut v);
        v
    });
    let bound = parallel_master_bound(&catalog::mergesort(), MergeMode::Sequential);
    println!(
        "case 2  mergesort        speedup {:>5.2}   promised: {:?}",
        t1 / tp,
        bound.speedup
    );

    // Case 3: dominant merge, T(n) = 2T(n/2) + n².
    let values: Vec<i64> = (0..1 << 12).map(|i| (i % 1009) as i64 - 504).collect();
    let t1 = time(|| cross_product_sum(&seq, &values, CrossMergeMode::Sequential));
    let tp_seq_merge = time(|| cross_product_sum(&pool, &values, CrossMergeMode::Sequential));
    let tp_par_merge = time(|| cross_product_sum(&pool, &values, CrossMergeMode::Parallel));
    let seq_bound = parallel_master_bound(&catalog::quadratic_merge(), MergeMode::Sequential);
    let par_bound = parallel_master_bound(&catalog::quadratic_merge(), MergeMode::Parallel);
    println!(
        "case 3  dominant merge   speedup {:>5.2}   promised: {:?} (sequential merge)",
        t1 / tp_seq_merge,
        seq_bound.speedup
    );
    println!(
        "case 3  + parallel merge speedup {:>5.2}   promised: {:?} (Eq. 5)",
        t1 / tp_par_merge,
        par_bound.speedup
    );
}
