//! Quickstart: the LoPRAM model in five minutes.
//!
//! Creates a pool with the paper's `p = O(log n)` processors, sorts with the
//! pal-thread mergesort of §3.1, classifies its recurrence with the parallel
//! Master theorem, and solves one dynamic program three different ways.
//!
//! Run with `cargo run --release --example quickstart`.

use lopram::analysis::{parallel_master_bound, recurrence::catalog, MergeMode, SpeedupClass};
use lopram::core::{processors_for, PalPool, ProcessorPolicy};
use lopram::dnc::mergesort::merge_sort;
use lopram::dp::prelude::*;

fn main() {
    // 1. A LoPRAM for an input of one million keys: p = ⌊log₂ n⌋ processors.
    let n = 1_000_000usize;
    let p = processors_for(n, ProcessorPolicy::LogN);
    let pool = PalPool::new(p).expect("at least one processor");
    println!("LoPRAM configured with p = {p} processors for n = {n} (p = O(log n))");

    // 2. The paper's mergesort: recursive calls become pal-threads.
    let mut data: Vec<i64> = (0..n as i64).rev().collect();
    merge_sort(&pool, &mut data);
    assert!(data.windows(2).all(|w| w[0] <= w[1]));
    println!("pal-thread mergesort sorted {n} keys on {p} processors");

    // 3. What does Theorem 1 promise for that recurrence?
    let rec = catalog::mergesort();
    let bound = parallel_master_bound(&rec, MergeMode::Sequential);
    println!(
        "mergesort recurrence T(n) = 2T(n/2) + n is Master case {:?}; promised speedup: {:?}",
        bound.case, bound.speedup
    );
    assert_eq!(bound.speedup, SpeedupClass::Linear);
    println!(
        "Eq. 3 predicts speedup {:.2} at n = {n}, p = {p}",
        rec.predicted_speedup(n, p)
    );

    // 4. A dynamic program (edit distance), solved by the wavefront scheduler,
    //    the counter scheduler of Algorithm 1 and parallel memoization.
    let a = b"low degree parallel random access machine".to_vec();
    let b = b"parallel algorithmic threads".to_vec();
    let problem = EditDistance::new(a, b);
    let sequential = solve_sequential(&problem).goal;
    let wavefront = solve_wavefront(&problem, &pool).goal;
    let counter = solve_counter(&problem, &pool).goal;
    let memoized = solve_memoized(&problem, &pool).goal;
    assert_eq!(sequential, wavefront);
    assert_eq!(sequential, counter);
    assert_eq!(sequential, memoized);
    println!("edit distance = {sequential} (identical across all four schedulers)");
}
